"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestFactorCommand:
    def test_conflux_default(self, capsys):
        rc = main(["factor", "--n", "32", "--p", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conflux" in out
        assert "residual" in out

    def test_verbose_phase_breakdown(self, capsys):
        rc = main(["factor", "--n", "32", "--p", "4", "--verbose"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "panel_a10" in out
        assert "msgs" in out

    def test_scalapack_with_block(self, capsys):
        rc = main(
            ["factor", "--impl", "scalapack2d", "--n", "32", "--p", "4",
             "--nb", "8"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "scalapack2d" in out

    def test_cholesky_builds_spd_input(self, capsys):
        rc = main(
            ["factor", "--impl", "cholesky25d", "--n", "32", "--p", "4"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cholesky25d" in out

    def test_conflux_explicit_v(self, capsys):
        rc = main(["factor", "--n", "32", "--p", "4", "--v", "8"])
        assert rc == 0
        assert "block=8" in capsys.readouterr().out

    def test_caqr_reports_orthogonality(self, capsys):
        rc = main(
            ["factor", "--impl", "caqr25d", "--n", "32", "--p", "4",
             "--v", "4"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "caqr25d" in out
        assert "orthogonality" in out

    def test_qr2d_verbose_phases(self, capsys):
        rc = main(
            ["factor", "--impl", "qr2d", "--n", "32", "--p", "4",
             "--nb", "8", "--verbose"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "panel_bcast" in out
        assert "update_reduce" in out

    def test_unknown_impl_rejected(self):
        with pytest.raises(SystemExit):
            main(["factor", "--impl", "mkl"])

    def test_algo_flag_is_canonical(self, capsys):
        rc = main(["factor", "--algo", "slate2d", "--n", "32",
                   "--p", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "slate2d" in out

    def test_list_shows_capabilities(self, capsys):
        rc = main(["factor", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("conflux", "scalapack2d", "slate2d", "candmc25d",
                     "cholesky25d", "caqr25d", "qr2d", "mmm25d"):
            assert name in out
        assert "chol" in out
        assert "25d" in out and "2d" in out
        assert "float64" in out

    def test_mmm_rejected_with_pointer(self, capsys):
        with pytest.raises(SystemExit):
            main(["factor", "--algo", "mmm25d", "--n", "16",
                  "--p", "4"])
        assert "mmm25d()" in capsys.readouterr().err


class TestBoundsCommand:
    def test_lu_bounds(self, capsys):
        rc = main(["bounds", "--kernel", "lu", "--n", "512",
                   "--m", "1024"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "LU I/O lower bound" in out
        assert "S1" in out and "S2" in out

    def test_parallel_bound_printed(self, capsys):
        rc = main(["bounds", "--kernel", "mmm", "--n", "256",
                   "--m", "1024", "--p", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "P=16" in out

    def test_cholesky_bounds(self, capsys):
        rc = main(["bounds", "--kernel", "cholesky", "--n", "256",
                   "--m", "256"])
        assert rc == 0
        assert "S3" in capsys.readouterr().out


class TestPlanCommand:
    def test_piz_daint_plan(self, capsys):
        rc = main(["plan", "--machine", "piz_daint", "--n", "16384",
                   "--p", "1024"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Piz Daint" in out
        assert "best: conflux" in out

    def test_summit_full_machine_default_p(self, capsys):
        rc = main(["plan", "--machine", "summit", "--n", "16384"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "P=4,608" in out


class TestModelsCommand:
    def test_exact_models(self, capsys):
        rc = main(["models", "--n", "4096", "--p", "1024"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conflux" in out and "GB total" in out

    def test_leading_flag(self, capsys):
        rc = main(["models", "--n", "4096", "--p", "1024", "--leading"])
        assert rc == 0
        assert "leading factors" in capsys.readouterr().out


class TestSweepCommand:
    def test_list_names_every_spec(self, capsys):
        rc = main(["sweep", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("table2", "fig6a", "fig7", "lower-bound-gap",
                     "qr-strong", "qr-weak", "qr-lower-bound-gap"):
            assert name in out

    def test_qr_gap_sweep_runs(self, capsys, tmp_path):
        rc = main(["sweep", "--run", "qr-lower-bound-gap",
                   "--max-points", "1", "--workers", "1",
                   "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 computed" in out
        assert "gap" in out

    def test_run_then_resume_hits_cache(self, capsys, tmp_path):
        args = ["sweep", "--run", "table2", "--max-points", "2",
                "--workers", "1", "--cache-dir", str(tmp_path)]
        rc = main(args)
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 computed, 0 cached" in out
        assert "scalapack2d" in out

        rc = main(["sweep", "--resume", "table2", "--max-points", "2",
                   "--workers", "1", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 computed, 2 cached" in out

    def test_show_and_clear_cache(self, capsys, tmp_path):
        main(["sweep", "--run", "table2", "--max-points", "1",
              "--workers", "1", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(["sweep", "--show-cache", "--cache-dir",
                   str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "entries: 1" in out
        rc = main(["sweep", "--clear-cache", "--cache-dir",
                   str(tmp_path)])
        assert rc == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_mpi_sweep_skips_cleanly(self, capsys, tmp_path):
        from repro.smpi.mpi_backend import have_mpi4py

        if have_mpi4py():  # pragma: no cover - CI has no mpi4py
            pytest.skip("mpi4py present; skip path not reachable")
        rc = main(["sweep", "--run", "table2-mpi", "--max-points", "2",
                   "--workers", "1", "--cache-dir", str(tmp_path),
                   "--verbose"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 skipped" in out

    def test_unknown_sweep_name(self, capsys):
        rc = main(["sweep", "--run", "not-a-sweep"])
        assert rc == 2
        assert "unknown sweep" in capsys.readouterr().err

    def test_no_action_is_an_error(self, capsys):
        rc = main(["sweep"])
        assert rc == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_no_cache_flag_recomputes(self, capsys, tmp_path):
        args = ["sweep", "--run", "lower-bound-gap", "--max-points",
                "1", "--workers", "1", "--no-cache",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert "1 computed" in capsys.readouterr().out
        assert main(args) == 0
        assert "1 computed" in capsys.readouterr().out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_point_importable(self):
        import importlib.util

        spec = importlib.util.find_spec("repro.__main__")
        assert spec is not None
