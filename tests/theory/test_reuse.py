"""Tests for inter-statement reuse (paper Section 4) and program bounds."""

import math

import pytest

from repro.theory.bounds import (
    cholesky_io_lower_bound,
    lu_io_lower_bound,
)
from repro.theory.daap import (
    cholesky_program,
    lu_program,
    matmul_like_pair_program,
    mmm_program,
    modified_mmm_program,
)
from repro.theory.intensity import statement_bound
from repro.theory.reuse import (
    input_reuse_bound,
    output_reuse_access_size,
    program_lower_bound,
)

M = 1024.0


class TestInputReuse:
    """Section 4.1 worked example: two products sharing matrix B."""

    def test_reuse_of_b_is_n3_over_m(self):
        pair = matmul_like_pair_program()
        n = 256
        entries = [
            (statement_bound(pair.statement(x), M), pair.statement(x), n)
            for x in ("S", "T")
        ]
        reuse = input_reuse_bound("B", entries)
        assert reuse == pytest.approx(n**3 / M, rel=0.02)

    def test_combined_bound_is_n3_over_m(self):
        """Q_tot >= Q_S + Q_T - Reuse(B) = N^3/M (paper's result;
        attainable by fusing and caching M-1 elements of B)."""
        n = 256
        pb = program_lower_bound(matmul_like_pair_program(), n, M)
        assert pb.q_total == pytest.approx(n**3 / M, rel=0.05)

    def test_reuse_never_exceeds_either_side(self):
        pair = matmul_like_pair_program()
        n = 128
        entries = [
            (statement_bound(pair.statement(x), M), pair.statement(x), n)
            for x in ("S", "T")
        ]
        reuse = input_reuse_bound("B", entries)
        for sb, stmt, _ in entries:
            per_sub = sb.solution.access_sizes
            total_accesses = max(per_sub) * stmt.vertex_count(n) / sb.solution.psi
            assert reuse <= total_accesses * (1.0 + 1e-6)

    def test_unknown_array_rejected(self):
        pair = matmul_like_pair_program()
        entries = [
            (
                statement_bound(pair.statement("S"), M),
                pair.statement("S"),
                64,
            )
        ]
        with pytest.raises(KeyError):
            input_reuse_bound("Z", entries)


class TestOutputReuse:
    """Section 4.2 worked example: recomputable twiddle factors."""

    def test_infinite_producer_rho_zeroes_the_weight(self):
        mod = modified_mmm_program()
        weights = output_reuse_access_size(
            mod.statement("T"), math.inf, "A"
        )
        # T's inputs are (C, A, B); the A weight must vanish
        assert weights == (1.0, 0.0, 1.0)

    def test_small_producer_rho_keeps_weight_at_one(self):
        """rho_S <= 1: recomputing is never cheaper than loading (the
        LU S1 -> S2 situation)."""
        lu = lu_program()
        weights = output_reuse_access_size(lu.statement("S2"), 1.0, "A",
                                           ("i", "k"))
        assert weights == (1.0, 1.0, 1.0)

    def test_exact_index_match_preferred(self):
        """LU S2 reads A three times; S1's output A[i,k] must map onto
        the A[i,k] operand, not A[i,j] or A[k,j]."""
        lu = lu_program()
        weights = output_reuse_access_size(
            lu.statement("S2"), 4.0, "A", ("i", "k")
        )
        assert weights == (1.0, 0.25, 1.0)

    def test_name_fallback_when_indices_differ(self):
        mod = modified_mmm_program()
        weights = output_reuse_access_size(
            mod.statement("T"), 2.0, "A", ("i", "j")
        )
        assert weights == (1.0, 0.5, 1.0)

    def test_missing_array_rejected(self):
        with pytest.raises(KeyError):
            output_reuse_access_size(
                mmm_program().statements[0], 2.0, "Z"
            )

    def test_modified_mmm_total_is_n3_over_m(self):
        """The combined bound drops from 2N^3/sqrt(M) to N^3/M."""
        n = 256
        pb = program_lower_bound(modified_mmm_program(), n, M)
        assert pb.q_total == pytest.approx(n**3 / M, rel=0.02)
        # and it is far below what T alone would need
        t_alone = statement_bound(
            modified_mmm_program().statement("T"), M
        ).q_lower(n)
        assert pb.q_total < t_alone / 10.0


class TestLUProgramBound:
    """Section 6 end-to-end: the paper's LU lower bound."""

    @pytest.mark.parametrize("n", [64, 128, 512])
    def test_matches_closed_form(self, n):
        pb = program_lower_bound(lu_program(), n, M)
        assert pb.q_total == pytest.approx(
            lu_io_lower_bound(n, M), rel=1e-3
        )

    def test_output_reuse_does_not_change_s2(self):
        """rho_S1 = 1 means no dominator shrinkage for S2 — the paper
        notes this explicitly."""
        pb = program_lower_bound(lu_program(), 128, M)
        s2_alone = statement_bound(
            lu_program().statement("S2"), M
        ).q_lower(128)
        assert pb.per_statement["S2"] == pytest.approx(s2_alone, rel=1e-6)

    def test_parallel_bound_divides_by_p(self):
        pb = program_lower_bound(lu_program(), 128, M)
        assert pb.q_parallel(16) == pytest.approx(pb.q_total / 16.0)

    def test_parallel_bound_rejects_bad_p(self):
        pb = program_lower_bound(lu_program(), 64, M)
        with pytest.raises(ValueError):
            pb.q_parallel(0)

    def test_bound_positive_and_increasing_in_n(self):
        q = [
            program_lower_bound(lu_program(), n, M).q_total
            for n in (64, 128, 256)
        ]
        assert q[0] > 0
        assert q[0] < q[1] < q[2]


class TestCholeskyProgramBound:
    def test_leading_term_matches_closed_form(self):
        n = 512
        pb = program_lower_bound(cholesky_program(), n, M)
        # S3 dominates; the total must sit within a few percent of the
        # S3-only leading term plus lower-order contributions
        assert pb.q_total >= cholesky_io_lower_bound(n, M)
        assert pb.q_total == pytest.approx(
            cholesky_io_lower_bound(n, M), rel=0.15
        )

    def test_cholesky_cheaper_than_lu(self):
        """Half the flops -> about half the I/O lower bound."""
        n = 256
        q_chol = program_lower_bound(cholesky_program(), n, M).q_total
        q_lu = program_lower_bound(lu_program(), n, M).q_total
        assert q_chol < q_lu


class TestMMMProgramBound:
    def test_single_statement_program(self):
        n = 128
        pb = program_lower_bound(mmm_program(), n, M)
        assert pb.q_total == pytest.approx(
            2.0 * n**3 / math.sqrt(M), rel=1e-3
        )
        assert pb.reuse_terms == ()
