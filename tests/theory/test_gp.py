"""Tests for the geometric-program solver (paper Eq. 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.gp import maximize_subcomputation, psi_exponent


class TestKnownOptima:
    def test_mmm_psi_is_x_over_3_to_three_halves(self):
        """MMM accesses {i,j},{i,k},{k,j}: psi(X) = (X/3)^{3/2}."""
        x = 3000.0
        sol = maximize_subcomputation(
            ("i", "j", "k"), (("i", "j"), ("i", "k"), ("k", "j")), x
        )
        assert sol.psi == pytest.approx((x / 3.0) ** 1.5, rel=1e-4)
        for v in ("i", "j", "k"):
            assert sol.sizes[v] == pytest.approx(math.sqrt(x / 3.0), rel=1e-3)

    def test_two_access_product_psi_is_x_over_2_squared(self):
        """Section 4.1 statement S: accesses {i,k},{k,j}: psi = (X/2)^2
        with K pinned at its lower bound 1."""
        x = 4096.0
        sol = maximize_subcomputation(
            ("i", "j", "k"), (("i", "k"), ("k", "j")), x
        )
        assert sol.psi == pytest.approx((x / 2.0) ** 2, rel=1e-3)
        assert sol.sizes["k"] == pytest.approx(1.0, abs=1e-3)

    def test_lu_s1_psi_is_x_minus_1(self):
        """LU S1: max K*I s.t. K*I + K <= X gives psi = X - 1 at K=1."""
        x = 1000.0
        sol = maximize_subcomputation(("k", "i"), (("i", "k"), ("k",)), x)
        assert sol.psi == pytest.approx(x - 1.0, rel=1e-4)
        assert sol.sizes["k"] == pytest.approx(1.0, abs=1e-3)

    def test_access_sizes_reported_at_optimum(self):
        x = 3000.0
        sol = maximize_subcomputation(
            ("i", "j", "k"), (("i", "j"), ("i", "k"), ("k", "j")), x
        )
        # all three access sets have size X/3 at the symmetric optimum
        for a in sol.access_sizes:
            assert a == pytest.approx(x / 3.0, rel=1e-3)

    def test_single_access_covering_all_vars(self):
        """One access over all variables: psi = X (stream everything)."""
        sol = maximize_subcomputation(("i", "j"), (("i", "j"),), 500.0)
        assert sol.psi == pytest.approx(500.0, rel=1e-4)


class TestWeights:
    def test_weight_two_halves_the_budget_share(self):
        """Doubling an access's weight is like halving X for it."""
        x = 1000.0
        base = maximize_subcomputation(("i",), (("i",),), x)
        weighted = maximize_subcomputation(
            ("i",), (("i",),), x, access_weights=(2.0,)
        )
        assert weighted.psi == pytest.approx(base.psi / 2.0, rel=1e-4)

    def test_fractional_weight_from_output_reuse(self):
        """Corollary 1: weight 1/rho shrinks the surface term."""
        x = 900.0
        w = 0.5
        sol = maximize_subcomputation(
            ("i", "j", "k"),
            (("i", "j"), ("i", "k"), ("k", "j")),
            x,
            access_weights=(1.0, w, 1.0),
        )
        plain = maximize_subcomputation(
            ("i", "j", "k"), (("i", "j"), ("i", "k"), ("k", "j")), x
        )
        assert sol.psi > plain.psi

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError, match="one weight per access"):
            maximize_subcomputation(
                ("i",), (("i",),), 100.0, access_weights=(1.0, 1.0)
            )


class TestValidation:
    def test_no_loop_vars_rejected(self):
        with pytest.raises(ValueError):
            maximize_subcomputation((), (("i",),), 100.0)

    def test_no_accesses_rejected(self):
        with pytest.raises(ValueError, match="unbounded"):
            maximize_subcomputation(("i",), (), 100.0)

    def test_uncovered_variable_rejected(self):
        with pytest.raises(ValueError, match="no input"):
            maximize_subcomputation(("i", "z"), (("i",),), 100.0)

    def test_unknown_access_variable_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            maximize_subcomputation(("i",), (("q",),), 100.0)

    def test_budget_too_small_rejected(self):
        with pytest.raises(ValueError, match="cannot cover"):
            maximize_subcomputation(("i",), (("i",),), 0.5)


class TestPsiExponent:
    def test_mmm_exponent_three_halves(self):
        p = psi_exponent(
            ("i", "j", "k"), (("i", "j"), ("i", "k"), ("k", "j"))
        )
        assert p == pytest.approx(1.5, abs=0.01)

    def test_outer_product_exponent_two(self):
        p = psi_exponent(("i", "j", "k"), (("i", "k"), ("k", "j")))
        assert p == pytest.approx(2.0, abs=0.01)

    def test_streaming_exponent_one(self):
        p = psi_exponent(("k", "i"), (("i", "k"), ("k",)))
        assert p == pytest.approx(1.0, abs=0.01)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(x=st.floats(min_value=50.0, max_value=1e6))
    def test_psi_monotone_in_x_for_mmm(self, x):
        sets = (("i", "j"), ("i", "k"), ("k", "j"))
        lo = maximize_subcomputation(("i", "j", "k"), sets, x)
        hi = maximize_subcomputation(("i", "j", "k"), sets, 2.0 * x)
        assert hi.psi >= lo.psi * (1.0 - 1e-6)

    @settings(max_examples=25, deadline=None)
    @given(x=st.floats(min_value=20.0, max_value=1e5))
    def test_constraint_respected_at_optimum(self, x):
        sets = (("i", "j"), ("i", "k"), ("k", "j"))
        sol = maximize_subcomputation(("i", "j", "k"), sets, x)
        assert sum(sol.access_sizes) <= x * (1.0 + 1e-5)

    @settings(max_examples=25, deadline=None)
    @given(x=st.floats(min_value=20.0, max_value=1e5))
    def test_all_sizes_at_least_one(self, x):
        sets = (("i", "k"), ("k", "j"))
        sol = maximize_subcomputation(("i", "j", "k"), sets, x)
        for v, size in sol.sizes.items():
            assert size >= 1.0 - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(
        x=st.floats(min_value=100.0, max_value=1e5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_optimum_beats_random_feasible_points(self, x, seed):
        """The GP optimum dominates randomly sampled feasible points."""
        import numpy as np

        sets = (("i", "j"), ("i", "k"), ("k", "j"))
        sol = maximize_subcomputation(("i", "j", "k"), sets, x)
        rng = np.random.default_rng(seed)
        for _ in range(20):
            # random feasible candidate: scale a random direction until
            # the constraint is met
            raw = np.exp(rng.uniform(0.0, math.log(x), size=3))
            i, j, k = raw
            surface = i * j + i * k + k * j
            scale = math.sqrt(x / surface) if surface > x else 1.0
            i, j, k = max(i * scale, 1), max(j * scale, 1), max(k * scale, 1)
            if i * j + i * k + k * j <= x:
                assert i * j * k <= sol.psi * (1.0 + 1e-4)
