"""Tests for computational intensity derivation (Lemmas 1, 2, 6)."""

import math

import pytest

from repro.theory.daap import (
    cholesky_program,
    lu_program,
    matmul_like_pair_program,
    mmm_program,
    modified_mmm_program,
)
from repro.theory.intensity import psi_of_x, statement_bound

M = 1024.0


class TestMMMIntensity:
    def test_x0_is_3m(self):
        sb = statement_bound(mmm_program().statements[0], M)
        assert sb.x0 == pytest.approx(3.0 * M, rel=1e-3)

    def test_rho_is_sqrt_m_over_2(self):
        sb = statement_bound(mmm_program().statements[0], M)
        assert sb.rho == pytest.approx(math.sqrt(M) / 2.0, rel=1e-3)

    def test_q_lower_is_2n3_over_sqrt_m(self):
        sb = statement_bound(mmm_program().statements[0], M)
        n = 512
        assert sb.q_lower(n) == pytest.approx(
            2.0 * n**3 / math.sqrt(M), rel=1e-3
        )

    def test_q_lower_parallel_divides_by_p(self):
        sb = statement_bound(mmm_program().statements[0], M)
        n, p = 256, 16
        assert sb.q_lower_parallel(n, p) == pytest.approx(
            sb.q_lower(n) / p, rel=1e-12
        )

    def test_lemma6_not_applied(self):
        sb = statement_bound(mmm_program().statements[0], M)
        assert not sb.lemma6_applied


class TestLUIntensities:
    def test_s1_rho_capped_at_1_by_lemma6(self):
        """Section 6: psi(X) = X-1 would allow rho -> 1 only in the
        limit; the out-degree-one argument pins rho_S1 = 1 exactly."""
        sb = statement_bound(lu_program().statement("S1"), M)
        assert sb.rho == 1.0
        assert sb.lemma6_applied
        assert math.isinf(sb.x0)

    def test_s1_rho_gp_approaches_1_from_above(self):
        sb = statement_bound(lu_program().statement("S1"), M)
        assert sb.rho_gp >= 1.0
        assert sb.rho_gp == pytest.approx(1.0, rel=1e-2)

    def test_s1_q_lower_matches_paper(self):
        sb = statement_bound(lu_program().statement("S1"), M)
        n = 100
        assert sb.q_lower(n) == pytest.approx(n * (n - 1) / 2.0, rel=1e-9)

    def test_s2_rho_is_sqrt_m_over_2(self):
        sb = statement_bound(lu_program().statement("S2"), M)
        assert sb.rho == pytest.approx(math.sqrt(M) / 2.0, rel=1e-3)

    def test_s2_q_lower_matches_paper_formula(self):
        sb = statement_bound(lu_program().statement("S2"), M)
        n = 200
        expected = (2.0 * n**3 - 6.0 * n**2 + 4.0 * n) / (3.0 * math.sqrt(M))
        assert sb.q_lower(n) == pytest.approx(expected, rel=1e-3)


class TestSection41Statements:
    def test_statement_s_rho_is_m(self):
        """Paper Section 4.1 example: rho_S = M, Q_S = N^3/M."""
        sb = statement_bound(
            matmul_like_pair_program().statement("S"), M
        )
        assert sb.x0 == pytest.approx(2.0 * M, rel=1e-2)
        assert sb.rho == pytest.approx(M, rel=1e-2)

    def test_statement_s_access_sizes_at_x0(self):
        sb = statement_bound(
            matmul_like_pair_program().statement("S"), M
        )
        # |A(R)| = |B(R)| = M at the optimum (I = J = M, K = 1)
        for a in sb.solution.access_sizes:
            assert a == pytest.approx(M, rel=1e-2)

    def test_q_s_is_n3_over_m(self):
        sb = statement_bound(
            matmul_like_pair_program().statement("S"), M
        )
        n = 256
        assert sb.q_lower(n) == pytest.approx(n**3 / M, rel=1e-2)


class TestRecomputationFree:
    def test_input_free_statement_has_infinite_rho(self):
        sb = statement_bound(modified_mmm_program().statement("S"), M)
        assert math.isinf(sb.rho)
        assert sb.q_lower(1000) == 0.0


class TestCholeskyIntensities:
    def test_s3_rho_matches_mmm_structure(self):
        sb = statement_bound(cholesky_program().statement("S3"), M)
        assert sb.rho == pytest.approx(math.sqrt(M) / 2.0, rel=1e-3)

    def test_s2_streaming_like_lu_s1(self):
        sb = statement_bound(cholesky_program().statement("S2"), M)
        assert sb.rho == 1.0


class TestPsiOfX:
    def test_lu_s2_psi_at_3m(self):
        sol = psi_of_x(lu_program().statement("S2"), 3.0 * M)
        assert sol.psi == pytest.approx(M**1.5, rel=1e-3)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError, match="M must be"):
            statement_bound(mmm_program().statements[0], 0.5)


class TestScalingInM:
    @pytest.mark.parametrize("m", [64.0, 256.0, 4096.0])
    def test_rho_scales_as_sqrt_m(self, m):
        sb = statement_bound(mmm_program().statements[0], m)
        assert sb.rho == pytest.approx(math.sqrt(m) / 2.0, rel=1e-2)

    def test_larger_memory_weakens_bound(self):
        s = mmm_program().statements[0]
        q_small = statement_bound(s, 256.0).q_lower(128)
        q_large = statement_bound(s, 4096.0).q_lower(128)
        assert q_large < q_small


class TestTensorContraction:
    """The intro's motivating workload: a batched contraction
    C[i,j,m] += A[i,k,m] B[k,j] handled by the same machinery."""

    def test_bound_derives_cleanly(self):
        from repro.theory.daap import tensor_contraction_program

        sb = statement_bound(
            tensor_contraction_program().statements[0], M
        )
        assert sb.rho > 0 and not math.isinf(sb.rho)
        assert sb.x0 > M

    def test_contraction_cheaper_per_flop_than_mmm(self):
        """The batched contraction reuses B across the m batch, so its
        per-vertex I/O (1/rho) is no worse than MMM's."""
        from repro.theory.daap import tensor_contraction_program

        tc = statement_bound(
            tensor_contraction_program().statements[0], M
        )
        mm = statement_bound(mmm_program().statements[0], M)
        assert tc.rho >= mm.rho * 0.99

    def test_q_scales_with_fourth_power(self):
        from repro.theory.daap import tensor_contraction_program

        sb = statement_bound(
            tensor_contraction_program().statements[0], M
        )
        assert sb.q_lower(32) == pytest.approx(
            sb.q_lower(16) * 16, rel=0.01
        )
