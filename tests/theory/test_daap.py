"""Tests for the DAAP program model (paper Section 2.2)."""

import pytest

from repro.theory.daap import (
    Access,
    Program,
    Statement,
    cholesky_program,
    lu_program,
    matmul_like_pair_program,
    mmm_program,
    modified_mmm_program,
)


class TestAccess:
    def test_distinct_variables_in_order(self):
        acc = Access("A", ("i", "k"))
        assert acc.variables == ("i", "k")
        assert acc.access_dim == 2

    def test_repeated_variable_collapses(self):
        """A[k,k] has dim(A)=2 but dim(phi)=1 — Section 2.2 item 7."""
        acc = Access("A", ("k", "k"))
        assert acc.variables == ("k",)
        assert acc.access_dim == 1

    def test_empty_index_rejected(self):
        with pytest.raises(ValueError):
            Access("A", ())

    def test_three_dimensional_access(self):
        acc = Access("D", ("i", "j", "k"))
        assert acc.access_dim == 3


class TestStatement:
    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="not in loop_vars"):
            Statement(
                name="bad",
                loop_vars=("i",),
                output=Access("A", ("i",)),
                inputs=(Access("B", ("z",)),),
                vertex_count=lambda n: n,
            )

    def test_access_variable_sets_cover_inputs_only(self):
        s = mmm_program().statements[0]
        assert s.access_variable_sets == (("i", "j"), ("i", "k"), ("k", "j"))

    def test_input_access_lookup(self):
        s = mmm_program().statements[0]
        assert s.input_access("B").index == ("k", "j")
        with pytest.raises(KeyError):
            s.input_access("Z")


class TestLUProgram:
    def test_statement_names(self):
        lu = lu_program()
        assert [s.name for s in lu.statements] == ["S1", "S2"]

    def test_s1_structure_matches_figure1(self):
        s1 = lu_program().statement("S1")
        assert s1.output == Access("A", ("i", "k"))
        assert s1.inputs[1] == Access("A", ("k", "k"))
        assert s1.inputs[1].access_dim == 1
        assert s1.out_degree_one_inputs == 1

    def test_s1_vertex_count(self):
        s1 = lu_program().statement("S1")
        # sum_{k=1}^{N} (N - k) = N(N-1)/2
        assert s1.vertex_count(10) == 45
        assert s1.vertex_count(1) == 0

    def test_s2_vertex_count_paper_formula(self):
        s2 = lu_program().statement("S2")
        n = 10
        assert s2.vertex_count(n) == pytest.approx(
            n**3 / 3 - n**2 + 2 * n / 3
        )

    def test_s2_vertex_count_literal_formula(self):
        s2 = lu_program(literal_counts=True).statement("S2")
        n = 10
        # literal Figure 1 loop nest: sum_{k=1}^{N}(N-k)^2
        assert s2.vertex_count(n) == sum(
            (n - k) ** 2 for k in range(1, n + 1)
        )

    def test_producer_consumer_edge_declared(self):
        lu = lu_program()
        assert ("S1", "S2", "A") in lu.producer_consumer

    def test_total_vertices(self):
        lu = lu_program(literal_counts=True)
        n = 6
        expected = sum((n - k) for k in range(1, n + 1)) + sum(
            (n - k) ** 2 for k in range(1, n + 1)
        )
        assert lu.total_vertices(n) == expected


class TestCannedPrograms:
    def test_mmm_single_statement(self):
        mmm = mmm_program()
        assert len(mmm.statements) == 1
        assert mmm.statements[0].vertex_count(7) == 343

    def test_pair_program_shares_b(self):
        pair = matmul_like_pair_program()
        assert pair.shared_inputs == (("B", ("S", "T")),)

    def test_modified_mmm_producer_is_input_free(self):
        mod = modified_mmm_program()
        s = mod.statement("S")
        assert s.recomputation_free
        assert s.inputs == ()

    def test_cholesky_three_statements(self):
        chol = cholesky_program()
        assert [s.name for s in chol.statements] == ["S1", "S2", "S3"]
        # S3 vertex count ~ N^3/6
        assert chol.statement("S3").vertex_count(100) == pytest.approx(
            100 * 99 * 101 / 6
        )

    def test_statement_lookup_missing(self):
        with pytest.raises(KeyError):
            mmm_program().statement("nope")


class TestDetectOverlaps:
    def test_shared_input_detection(self):
        pair = matmul_like_pair_program()
        shared, pc = Program.detect_overlaps(pair.statements)
        assert ("B", ("S", "T")) in shared
        assert pc == ()

    def test_producer_consumer_detection(self):
        mod = modified_mmm_program()
        shared, pc = Program.detect_overlaps(mod.statements)
        assert ("S", "T", "A") in pc

    def test_lu_self_dependency_detected(self):
        lu = lu_program()
        _, pc = Program.detect_overlaps(lu.statements)
        assert ("S1", "S2", "A") in pc
