"""Tests for closed-form bounds (paper Section 6 expressions)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.bounds import (
    BoundSummary,
    cholesky_io_lower_bound,
    conflux_gap_over_lower_bound,
    conflux_io_cost,
    lu_io_lower_bound,
    lu_parallel_lower_bound,
    lu_parallel_lower_bound_leading,
    lu_s1_lower_bound,
    lu_s2_lower_bound,
    mmm_io_lower_bound,
    mmm_parallel_lower_bound,
    summarize_lu,
)


class TestLUBounds:
    def test_s1_formula(self):
        assert lu_s1_lower_bound(10) == 45.0
        assert lu_s1_lower_bound(1) == 0.0

    def test_s2_formula(self):
        n, m = 100, 64.0
        expected = (2 * n**3 - 6 * n**2 + 4 * n) / (3 * math.sqrt(m))
        assert lu_s2_lower_bound(n, m) == pytest.approx(expected)

    def test_s2_never_negative_for_tiny_n(self):
        assert lu_s2_lower_bound(1, 16.0) == 0.0

    def test_total_is_sum_of_statement_bounds(self):
        n, m = 64, 256.0
        assert lu_io_lower_bound(n, m) == pytest.approx(
            lu_s1_lower_bound(n) + lu_s2_lower_bound(n, m)
        )

    def test_parallel_divides_by_p(self):
        n, m, p = 128, 256.0, 8
        assert lu_parallel_lower_bound(n, m, p) == pytest.approx(
            lu_io_lower_bound(n, m) / p
        )

    def test_leading_term(self):
        n, m, p = 4096, 1024.0, 64
        assert lu_parallel_lower_bound_leading(n, m, p) == pytest.approx(
            2 * n**3 / (3 * p * math.sqrt(m))
        )

    def test_leading_term_dominates_for_large_n(self):
        n, m, p = 16384, 1_048_576.0, 64
        full = lu_parallel_lower_bound(n, m, p)
        leading = lu_parallel_lower_bound_leading(n, m, p)
        assert full == pytest.approx(leading, rel=0.05)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_n_rejected(self, bad):
        with pytest.raises(ValueError):
            lu_io_lower_bound(bad, 64.0)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            lu_io_lower_bound(64, 0.0)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            lu_parallel_lower_bound(64, 64.0, 0)


class TestMMMCholesky:
    def test_mmm_formula(self):
        assert mmm_io_lower_bound(100, 100.0) == pytest.approx(
            2e6 / 10.0
        )

    def test_mmm_parallel(self):
        assert mmm_parallel_lower_bound(100, 100.0, 4) == pytest.approx(
            mmm_io_lower_bound(100, 100.0) / 4
        )

    def test_cholesky_is_sixth_of_cube_times_2_over_sqrt_m(self):
        n, m = 300, 900.0
        assert cholesky_io_lower_bound(n, m) == pytest.approx(
            n**3 / (3 * 30.0)
        )


class TestConfluxGap:
    """The headline claim: COnfLUX sits 1/3 above the lower bound."""

    @pytest.mark.parametrize(
        "n,m,p",
        [(4096, 1024.0, 64), (16384, 1_048_576.0, 1024), (512, 256.0, 8)],
    )
    def test_gap_is_exactly_three_halves(self, n, m, p):
        assert conflux_gap_over_lower_bound(n, m, p) == pytest.approx(1.5)

    def test_conflux_cost_leading_term(self):
        n, m, p = 4096, 1_048_576.0, 64
        assert conflux_io_cost(n, m, p) == pytest.approx(
            n**3 / (p * math.sqrt(m))
        )


class TestBoundSummary:
    def test_gb_conversion_uses_8_byte_elements(self):
        s = BoundSummary(kernel="LU", n=10, m=4.0, p=1, q_lower=1e9)
        assert s.q_lower_gb == pytest.approx(8.0)

    def test_describe_contains_key_numbers(self):
        s = summarize_lu(1024, 4096.0, 16)
        text = s.describe()
        assert "N=1024" in text and "P=16" in text

    def test_summarize_lu_consistent(self):
        s = summarize_lu(256, 512.0, 4)
        assert s.q_lower == pytest.approx(
            lu_parallel_lower_bound(256, 512.0, 4)
        )


class TestScalingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=10_000),
        m=st.floats(min_value=4.0, max_value=1e7),
        p=st.integers(min_value=1, max_value=100_000),
    )
    def test_bound_nonnegative(self, n, m, p):
        assert lu_parallel_lower_bound(n, m, p) >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=5_000),
        m=st.floats(min_value=16.0, max_value=1e6),
    )
    def test_more_memory_never_raises_bound(self, n, m):
        assert lu_io_lower_bound(n, 2 * m) <= lu_io_lower_bound(n, m) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=5_000),
        m=st.floats(min_value=16.0, max_value=1e6),
        p=st.integers(min_value=1, max_value=4_096),
    )
    def test_conflux_always_above_bound(self, n, m, p):
        """COnfLUX's leading cost can never dip below the leading lower
        bound — sanity for all parameter combinations."""
        assert (
            conflux_io_cost(n, m, p)
            >= lu_parallel_lower_bound_leading(n, m, p) - 1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=2_000),
        m=st.floats(min_value=16.0, max_value=1e5),
    )
    def test_doubling_p_halves_parallel_bound(self, n, m):
        q1 = lu_parallel_lower_bound(n, m, 7)
        q2 = lu_parallel_lower_bound(n, m, 14)
        assert q2 == pytest.approx(q1 / 2.0)


class TestQrBound:
    """The QR I/O lower bound (4 N^3 / (3 sqrt(M)) and its parallel
    form) sits in fixed ratios to the LU and Cholesky bounds."""

    def test_twice_lu_s2(self):
        from repro.theory.bounds import qr_io_lower_bound

        n, m = 4096, 1 << 20
        # Twice LU's leading Schur term (two multiplications per wedge
        # point), exactly in the leading order.
        assert qr_io_lower_bound(n, m) == pytest.approx(
            4.0 * n**3 / (3.0 * math.sqrt(m))
        )
        assert qr_io_lower_bound(n, m) == pytest.approx(
            4.0 * cholesky_io_lower_bound(n, m)
        )

    def test_parallel_divides_by_p(self):
        from repro.theory.bounds import (
            qr_io_lower_bound,
            qr_parallel_lower_bound,
        )

        n, m = 1024, 1 << 16
        assert qr_parallel_lower_bound(n, m, 64) == pytest.approx(
            qr_io_lower_bound(n, m) / 64
        )

    def test_validation(self):
        from repro.theory.bounds import (
            qr_io_lower_bound,
            qr_parallel_lower_bound,
        )

        with pytest.raises(ValueError):
            qr_io_lower_bound(0, 16)
        with pytest.raises(ValueError):
            qr_io_lower_bound(16, 0.5)
        with pytest.raises(ValueError):
            qr_parallel_lower_bound(16, 16, 0)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=16, max_value=5_000),
        m=st.floats(min_value=16.0, max_value=1e6),
    )
    def test_more_memory_never_raises_qr_bound(self, n, m):
        from repro.theory.bounds import qr_io_lower_bound

        assert qr_io_lower_bound(n, 2 * m) <= qr_io_lower_bound(n, m) + 1e-9
