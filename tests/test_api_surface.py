"""Public-API snapshot: ``repro.algorithms.__all__`` and the registry's
declared capabilities must match the checked-in snapshot.

Changing the public surface is allowed — but it has to be deliberate:
regenerate ``tests/data/api_surface.json`` in the same commit and the
diff will show exactly what was added, removed or re-declared.
"""

import json
from pathlib import Path

import repro.algorithms as alg
from repro.algorithms.api import KINDS, GRID_FAMILIES, REGISTRY

SNAPSHOT = Path(__file__).parent / "data" / "api_surface.json"


def _current_surface() -> dict:
    return {
        "all": list(alg.__all__),
        "registry": {
            name: {
                "kind": info.kind,
                "grid_family": info.grid_family,
                "dtypes": list(info.dtypes),
                "block_param": info.block_param,
            }
            for name, info in sorted(REGISTRY.items())
        },
    }


def test_public_surface_matches_snapshot():
    snap = json.loads(SNAPSHOT.read_text())
    current = _current_surface()
    assert current["all"] == snap["all"], (
        "repro.algorithms.__all__ changed; if intentional, regenerate "
        "tests/data/api_surface.json"
    )
    assert current["registry"] == snap["registry"], (
        "registry capabilities changed; if intentional, regenerate "
        "tests/data/api_surface.json"
    )


def test_all_is_sorted_and_importable():
    assert list(alg.__all__) == sorted(alg.__all__)
    for name in alg.__all__:
        assert getattr(alg, name, None) is not None, name


def test_registry_entries_are_well_formed():
    for name, info in REGISTRY.items():
        assert info.name == name
        assert info.kind in KINDS
        assert info.grid_family in GRID_FAMILIES
        assert info.dtypes
        assert callable(info.func)
        assert info.description


def test_every_registered_name_reaches_factor_by_name():
    """api.register_algorithm also fills the legacy dispatch map."""
    from repro.algorithms.base import IMPLEMENTATIONS

    for name, info in REGISTRY.items():
        assert IMPLEMENTATIONS[name] is info.func
