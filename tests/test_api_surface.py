"""Public-API snapshot: ``repro.algorithms.__all__``,
``repro.models.__all__`` and both registries' declared capabilities
must match the checked-in snapshot.

Changing the public surface is allowed — but it has to be deliberate:
regenerate ``tests/data/api_surface.json`` in the same commit and the
diff will show exactly what was added, removed or re-declared.
"""

import json
from pathlib import Path

import repro.algorithms as alg
import repro.models as models
from repro.algorithms.api import KINDS, GRID_FAMILIES, REGISTRY
from repro.models.api import MODEL_KINDS, MODEL_REGISTRY
from repro.models.machines import MACHINES

SNAPSHOT = Path(__file__).parent / "data" / "api_surface.json"


def _current_surface() -> dict:
    return {
        "all": list(alg.__all__),
        "registry": {
            name: {
                "kind": info.kind,
                "grid_family": info.grid_family,
                "dtypes": list(info.dtypes),
                "block_param": info.block_param,
            }
            for name, info in sorted(REGISTRY.items())
        },
        "models_all": list(models.__all__),
        "model_registry": {
            name: {
                "kind": info.kind,
                "grid_family": info.grid_family,
                "memory_sensitive": info.memory_sensitive,
            }
            for name, info in sorted(MODEL_REGISTRY.items())
        },
        "machines": sorted(MACHINES),
    }


def test_public_surface_matches_snapshot():
    snap = json.loads(SNAPSHOT.read_text())
    current = _current_surface()
    assert current["all"] == snap["all"], (
        "repro.algorithms.__all__ changed; if intentional, regenerate "
        "tests/data/api_surface.json"
    )
    assert current["registry"] == snap["registry"], (
        "registry capabilities changed; if intentional, regenerate "
        "tests/data/api_surface.json"
    )
    assert current["models_all"] == snap["models_all"], (
        "repro.models.__all__ changed; if intentional, regenerate "
        "tests/data/api_surface.json"
    )
    assert current["model_registry"] == snap["model_registry"], (
        "model registry capabilities changed; if intentional, "
        "regenerate tests/data/api_surface.json"
    )
    assert current["machines"] == snap["machines"], (
        "machine presets changed; if intentional, regenerate "
        "tests/data/api_surface.json"
    )


def test_all_is_sorted_and_importable():
    assert list(alg.__all__) == sorted(alg.__all__)
    for name in alg.__all__:
        assert getattr(alg, name, None) is not None, name


def test_models_all_is_sorted_and_importable():
    assert list(models.__all__) == sorted(models.__all__)
    for name in models.__all__:
        assert getattr(models, name, None) is not None, name


def test_model_registry_entries_are_well_formed():
    for name, info in MODEL_REGISTRY.items():
        assert info.name == name
        assert info.kind in MODEL_KINDS
        assert callable(info.total_bytes)
        assert info.description


def test_registry_entries_are_well_formed():
    for name, info in REGISTRY.items():
        assert info.name == name
        assert info.kind in KINDS
        assert info.grid_family in GRID_FAMILIES
        assert info.dtypes
        assert callable(info.func)
        assert info.description


def test_every_registered_name_reaches_factor_by_name():
    """api.register_algorithm also fills the legacy dispatch map."""
    from repro.algorithms.base import IMPLEMENTATIONS

    for name, info in REGISTRY.items():
        assert IMPLEMENTATIONS[name] is info.func
