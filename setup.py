"""Legacy shim for offline editable installs — no metadata here.

All project metadata, dependencies and tool configuration live in
pyproject.toml.  This file exists only because environments without
the ``wheel`` package (like the offline container this repo ships in)
cannot build PEP 660 editable wheels — pip refuses both the modern
and the legacy path there.  Offline, either of these works::

    python setup.py develop          # setuptools only, no wheel
    PYTHONPATH=src python -m repro   # no install at all

Anywhere with network access a plain ``pip install -e .`` works and
ignores this file.
"""

from setuptools import setup

# setuptools >= 61 reads every field (name, version, src-layout
# package discovery) from pyproject.toml; keep this call bare so
# there is exactly one source of truth.
setup()
