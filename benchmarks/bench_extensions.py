"""E11 — Extensions: the paper's future work on the same substrate.

* 2.5D Cholesky (Section 11: "mandates the exploration of the parallel
  pebbling strategy to algorithms such as Cholesky factorization"):
  measured volume vs the theory bound N^3/(3 sqrt(M)) that
  repro.theory derives for the Cholesky DAAP.
* 2.5D MMM ([42], the method's origin): measured volume sits on the
  2 N^3/(P sqrt(M)) bound — communication-optimal, the reference point
  for COnfLUX's 1.5x.
"""

import numpy as np
import pytest

from repro.algorithms import cholesky25d_lu, conflux_lu, mmm25d
from repro.harness import format_table
from repro.theory.bounds import (
    cholesky_io_lower_bound,
    mmm_parallel_lower_bound,
)


def _spd(n: int, seed: int = 0) -> np.ndarray:
    b = np.random.default_rng(seed).standard_normal((n, n))
    return b @ b.T + n * np.eye(n)


def test_cholesky_vs_lu_volume(benchmark, show):
    """Cholesky moves less data than LU on the same grid (half the
    flops, no pivoting machinery)."""
    g, c, v = 2, 2, 8
    p = g * g * c

    def run():
        rows = []
        for n in (64, 128, 192):
            a = _spd(n, seed=n)
            chol = cholesky25d_lu(a, p, grid=(g, g, c), v=v)
            lu = conflux_lu(a, p, grid=(g, g, c), v=v)
            rows.append(
                {
                    "n": n,
                    "cholesky_bytes": chol.volume.total_bytes,
                    "lu_bytes": lu.volume.total_bytes,
                    "ratio": chol.volume.total_bytes
                    / lu.volume.total_bytes,
                    "chol_residual": chol.residual,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows,
        [
            ("n", "N"),
            ("cholesky_bytes", "Cholesky [B]"),
            ("lu_bytes", "LU [B]"),
            ("ratio", "Chol/LU"),
            ("chol_residual", "residual"),
        ],
        title=f"2.5D Cholesky vs COnfLUX LU (grid ({g},{g},{c}), v={v})",
    ))
    for row in rows:
        assert row["ratio"] < 1.0
        assert row["chol_residual"] < 1e-11


def test_cholesky_above_its_bound(benchmark, show):
    """Measured Cholesky volume respects the theory module's bound
    N^3/(3 sqrt(M)) (sequential, /P in parallel)."""
    g, c, v, n = 2, 2, 8, 192
    p = g * g * c

    def run():
        return cholesky25d_lu(_spd(n, seed=1), p, grid=(g, g, c), v=v)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    m = c * n * n / p
    bound_total = cholesky_io_lower_bound(n, m) * 8  # bytes, all ranks
    gap = res.volume.total_bytes / bound_total
    show(f"Cholesky N={n}: measured {res.volume.total_bytes:,} B, "
         f"bound {bound_total:,.0f} B, gap {gap:.2f}x")
    assert gap > 1.0


def test_mmm_sits_on_its_bound(benchmark, show):
    """The [42] result on our substrate: 2.5D MMM within ~7% of
    2 N^3/(P sqrt(M)) — the optimality reference for LU's 1.5x."""
    g, c, n = 8, 2, 128
    p = g * g * c

    def run():
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal((2, n, n))
        return mmm25d(a, b, p, grid=(g, g, c))

    out, report, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    m = c * n * n / p
    bound = mmm_parallel_lower_bound(n, m, p) * p * 8
    ratio = report.total_bytes / bound
    show(f"2.5D MMM (G={g}, c={c}, N={n}): measured/bound = {ratio:.3f} "
         f"(LU's COnfLUX: 1.5)")
    assert ratio == pytest.approx(17 / 16, rel=0.02)
