"""E10.2 — Ablation: the blocking parameter v (paper Section 7.2).

The paper: "the minimum size of each block is c = P M / N^2 ... to
secure high performance this value should also be adjusted to hardware
parameters".  Volume-wise, the A00 broadcast term grows linearly in v
((P-1)(v^2+v) per step, N/v steps => ~P N v total), so the simulator's
volume-optimal choice is v = c; real machines trade that against
latency (N/v pivoting rounds — the tournament's whole point).
"""

import numpy as np
import pytest

from repro.algorithms import conflux_lu
from repro.harness import format_table, run_sweep
from repro.harness.specs import block_size_spec


def test_block_size_volume_sweep(benchmark, show, sweep_cache):
    n, g, c = 128, 2, 2

    def run():
        # one cached sweep point per blocking parameter v
        result = run_sweep(
            block_size_spec(n=n, g=g, c=c, v_values=(2, 4, 8, 16, 32)),
            cache=sweep_cache,
        )
        return result.rows()

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows,
        [
            ("v", "v"),
            ("steps", "steps (latency)"),
            ("total_bytes", "total [B]"),
            ("bcast_a00", "bcast A00 [B]"),
            ("tournament", "tournament [B]"),
        ],
        title=f"Blocking parameter sweep (N={n}, grid=({g},{g},{c}))",
    ))
    # bcast term grows ~linearly with v
    bcast = {row["v"]: row["bcast_a00"] for row in rows}
    assert bcast[32] / bcast[2] == pytest.approx(32 / 2, rel=0.35)
    # total volume is minimized at small v; the latency (step count)
    # falls as 1/v — the tradeoff the paper tunes with a = v/c
    totals = [row["total_bytes"] for row in rows]
    assert totals[0] < totals[-1]
    steps = [row["steps"] for row in rows]
    assert steps[0] > steps[-1]


def test_v_below_c_is_rejected(benchmark):
    """Section 7.2's constraint v >= c is enforced."""
    a = np.random.default_rng(4).standard_normal((32, 32))

    def attempt():
        try:
            conflux_lu(a, 16, grid=(2, 2, 4), v=2)
            return False
        except ValueError:
            return True

    assert benchmark(attempt)
