"""E10.3 — Ablation: Processor Grid Optimization (paper Section 8).

"Other implementations, which greedily try to utilize all resources,
often find communication-suboptimal decompositions for difficult-to-
factorize numbers of ranks" — the inset outliers of Figure 6a.  This
ablation compares the optimizer against the use-every-rank policy over
awkward rank counts, in the model and in a measured run.
"""

import numpy as np
from repro.algorithms import conflux_lu
from repro.algorithms.gridopt import optimize_grid_25d
from repro.harness import format_table


def test_gridopt_vs_greedy_model(benchmark, show):
    n = 8192

    def run():
        rows = []
        for p in (8, 12, 18, 24, 27, 48, 96, 100):
            free = optimize_grid_25d(p, n)
            try:
                greedy = optimize_grid_25d(p, n, use_all_ranks=True)
                greedy_per_rank = greedy.modeled_per_rank_bytes
            except ValueError:
                greedy_per_rank = None
            rows.append(
                {
                    "p": p,
                    "grid": f"({free.grid_rows},{free.grid_rows},"
                            f"{free.layers})",
                    "disabled": free.disabled_ranks,
                    "opt_per_rank": free.modeled_per_rank_bytes,
                    "greedy_per_rank": greedy_per_rank,
                }
            )
        return rows

    rows = benchmark(run)
    show(format_table(
        rows,
        [
            ("p", "P"),
            ("grid", "optimized grid"),
            ("disabled", "disabled"),
            ("opt_per_rank", "optimized [B/rank]"),
            ("greedy_per_rank", "use-all-ranks [B/rank]"),
        ],
        title=f"Processor Grid Optimization (model, N={n})",
    ))
    for row in rows:
        if row["greedy_per_rank"] is not None:
            assert row["opt_per_rank"] <= row["greedy_per_rank"] * 1.0001
    # some awkward P must lead to disabled ranks
    assert any(row["disabled"] > 0 for row in rows)


def test_gridopt_measured_on_awkward_p(benchmark, show):
    """P = 11 (prime): the optimizer disables ranks and still beats the
    degenerate full-use alternative."""
    n = 96

    def run():
        a = np.random.default_rng(5).standard_normal((n, n))
        choice = optimize_grid_25d(11, n)
        res = conflux_lu(
            a, 11, grid=(choice.grid_rows, choice.grid_rows, choice.layers)
        )
        return choice, res

    choice, res = benchmark.pedantic(run, rounds=1, iterations=1)
    show(f"P=11 -> grid ({choice.grid_rows},{choice.grid_rows},"
         f"{choice.layers}), {choice.disabled_ranks} ranks disabled, "
         f"measured {res.volume.total_bytes:,} B, residual "
         f"{res.residual:.1e}")
    assert res.residual < 1e-11
    assert choice.disabled_ranks > 0
    assert choice.disabled_fraction < 0.5  # "a minor fraction of nodes"


def test_smooth_scaling_across_p(benchmark, show):
    """With the optimizer, per-rank model cost decreases smoothly in P —
    no Figure 6a-style outliers."""
    n = 16384

    def run():
        return [
            optimize_grid_25d(p, n).modeled_per_rank_bytes
            for p in range(8, 129, 8)
        ]

    costs = benchmark(run)
    jumps = [b / a for a, b in zip(costs, costs[1:])]
    worst = max(jumps)
    show(f"worst upward jump in per-rank cost across P=8..128: "
         f"{100 * (worst - 1):.2f}%")
    assert worst < 1.02  # never more than 2% worse when adding ranks
