"""E6 — Section 6: the parallel I/O lower bound and COnfLUX's 1/3 gap.

Two checks:

* measured: simulated COnfLUX volume always sits above the bound
  2 N^3 / (3 P sqrt(M)); the gap shrinks toward the theoretical
  ratio as N grows;
* model: in the c << P^(1/3) regime the exact COnfLUX model converges
  to 1.5x the bound — exactly the paper's "only a factor of 1/3 over"
  claim (at maximum replication the reduce terms double the leading
  cost; EXPERIMENTS.md discusses this reproduction finding).
"""

import pytest

from repro.harness import format_table, lower_bound_gap
from repro.harness.experiments import model_gap_at_scale


def test_measured_gap_above_bound(benchmark, show, sweep_cache):
    rows = benchmark.pedantic(
        lower_bound_gap,
        kwargs={"n_values": (64, 128, 256), "p": 16,
                "cache": sweep_cache},
        rounds=1,
        iterations=1,
    )
    show(format_table(
        rows,
        [
            ("n", "N"),
            ("grid", "grid"),
            ("measured_elements", "measured [el]"),
            ("bound_elements", "bound [el]"),
            ("gap", "measured/bound"),
        ],
        title="Section 6: measured COnfLUX vs parallel I/O lower bound",
    ))
    for row in rows:
        assert row["gap"] > 1.0  # no schedule may beat the bound
    gaps = [row["gap"] for row in rows]
    assert gaps[-1] < gaps[0]  # finite-N overhead shrinks with N


def test_model_gap_converges_to_three_halves(benchmark, show):
    def gaps():
        return {
            (n, p, c): model_gap_at_scale(n=n, p=p, c=c)
            for (n, p, c) in [
                (16384, 4096, 2),
                (65536, 4096, 2),
                (262144, 16384, 2),
            ]
        }

    vals = benchmark(gaps)
    lines = [
        f"  N={n:>7} P={p:>6} c={c}: gap = {g:.3f}"
        for (n, p, c), g in sorted(vals.items())
    ]
    show("model gap over lower bound (-> 1.5):\n" + "\n".join(lines))
    final = vals[(262144, 16384, 2)]
    assert final == pytest.approx(1.5, abs=0.08)


def test_gap_at_max_replication_is_larger(benchmark, show):
    """Reproduction finding: at c = P^(1/3) the reduce terms equal the
    panel term, pushing the exact-model gap toward 3x (the paper's
    O(N^2/P) bookkeeping treats c as constant)."""

    def gap():
        return model_gap_at_scale(n=262144, p=4096, c=16)

    g = benchmark(gap)
    show(f"gap at max replication (c=16=P^(1/3)): {g:.2f} (vs 1.5 at "
         f"small c)")
    assert g > 2.5
