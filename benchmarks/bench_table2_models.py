"""E1 — Table 2, model rows: Total comm. volume modeled [GB].

Regenerates the paper's modeled values at its exact (N, P) points and
checks the regression: the 2D models must match to three digits, the
COnfLUX model within 2%.  (CANDMC's published model has unquoted
lower-order terms; ours reproduces its leading 5 N^3/(P sqrt(M)) — the
discrepancy is recorded in EXPERIMENTS.md.)
"""

import pytest

from repro.harness import format_table, table2_model_rows


def test_table2_model_regression(benchmark, show):
    rows = benchmark(table2_model_rows)
    show(format_table(
        rows,
        [
            ("n", "N"),
            ("p", "P"),
            ("impl", "implementation"),
            ("model_gb", "our model [GB]"),
            ("paper_modeled_gb", "paper model [GB]"),
            ("paper_measured_gb", "paper measured [GB]"),
        ],
        title="Table 2 (modeled): total communication volume",
    ))
    for row in rows:
        if row["impl"] in ("scalapack2d", "slate2d"):
            assert row["model_gb"] == pytest.approx(
                row["paper_modeled_gb"], abs=0.005
            )
        elif row["impl"] == "conflux":
            assert row["model_gb"] == pytest.approx(
                row["paper_modeled_gb"], rel=0.02
            )


def test_table2_winner_ordering(benchmark, show):
    """The paper's ordering holds at every Table 2 cell: COnfLUX < 2D
    libraries < CANDMC."""
    rows = benchmark(table2_model_rows)
    by_point: dict[tuple, dict] = {}
    for row in rows:
        by_point.setdefault((row["n"], row["p"]), {})[row["impl"]] = row[
            "model_gb"
        ]
    lines = []
    for (n, p), vols in sorted(by_point.items()):
        order = sorted(vols, key=vols.get)
        lines.append(f"N={n:>6} P={p:>5}: " + " < ".join(order))
        assert order[0] == "conflux"
        assert order[-1] == "candmc25d"
    show("Winner ordering per Table 2 cell:\n" + "\n".join(lines))
