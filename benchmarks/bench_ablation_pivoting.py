"""E10.1 — Ablation: row masking vs row swapping (paper Section 7.3).

The design choice DESIGN.md calls out: on a c-replicated 2.5D layout,
physically swapping pivot rows costs O(N^3/(P sqrt(M))) — the same order
as the whole factorization — while COnfLUX's masking moves only O(v)
pivot indices per step.  This ablation measures both schedules on the
same matrices and sweeps the replication depth.
"""

import numpy as np
import pytest

from repro.algorithms import candmc25d_lu, conflux_lu
from repro.harness import format_table


def test_masking_vs_swapping_volume(benchmark, show):
    n, g, v = 128, 2, 8

    def run():
        rows = []
        for c in (1, 2, 4):
            a = np.random.default_rng(7).standard_normal((n, n))
            p = g * g * c
            masked = conflux_lu(a, p, grid=(g, g, c), v=v)
            swapped = candmc25d_lu(a, p, grid=(g, g, c), v=v)
            rows.append(
                {
                    "c": c,
                    "masked_bytes": masked.volume.total_bytes,
                    "swapped_bytes": swapped.volume.total_bytes,
                    "swap_phase": swapped.volume.phase_bytes.get(
                        "row_swap", 0
                    ),
                    "overhead": swapped.volume.total_bytes
                    / masked.volume.total_bytes,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows,
        [
            ("c", "c"),
            ("masked_bytes", "masking [B]"),
            ("swapped_bytes", "swapping [B]"),
            ("swap_phase", "swap traffic [B]"),
            ("overhead", "swap/mask"),
        ],
        title=f"Row masking vs row swapping (N={n}, G={g}, v={v})",
    ))
    overheads = [row["overhead"] for row in rows]
    # swapping always costs more, and the penalty grows with replication
    assert all(o > 1.0 for o in overheads)
    assert overheads[-1] > overheads[0]


def test_swap_traffic_scales_with_replication(benchmark, show):
    """The row_swap phase alone scales ~linearly in c (every layer's
    partials must be swapped)."""
    n, g, v = 96, 2, 8

    def run():
        a = np.random.default_rng(11).standard_normal((n, n))
        out = {}
        for c in (2, 4):
            res = candmc25d_lu(a, g * g * c, grid=(g, g, c), v=v)
            out[c] = res.volume.phase_bytes["row_swap"]
        return out

    swaps = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = swaps[4] / swaps[2]
    show(f"row_swap bytes: c=2 -> {swaps[2]:,}, c=4 -> {swaps[4]:,} "
         f"(ratio {ratio:.2f}, linear-in-c theory: 2.0)")
    assert ratio == pytest.approx(2.0, rel=0.25)


def test_masking_index_traffic_is_negligible(benchmark, show):
    """COnfLUX's pivot bookkeeping rides in bcast_a00 (v ids per step):
    O(N) total vs O(N^2) data terms."""
    n, g, c, v = 128, 2, 2, 8

    def run():
        a = np.random.default_rng(13).standard_normal((n, n))
        return conflux_lu(a, g * g * c, grid=(g, g, c), v=v)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    # ids are 8 bytes x v per step x (P-1) receivers, inside bcast_a00
    steps = n // v
    id_bytes = (g * g * c - 1) * v * 8 * steps
    share = id_bytes / res.volume.total_bytes
    show(f"pivot-index traffic: {id_bytes:,} B of "
         f"{res.volume.total_bytes:,} B total ({100 * share:.2f}%)")
    assert share < 0.05
