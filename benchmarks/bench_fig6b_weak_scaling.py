"""E4 — Figure 6b: weak scaling, N = N0 * P^(1/3) (constant work/node).

The paper's claim: "2.5D algorithms (CANDMC and COnfLUX) retain constant
communication volume per processor" while the 2D libraries grow like
P^(1/6).  Measured at simulator scale; model series at the paper's
N0 = 3200.
"""

import pytest

from repro.harness import fig6b_weak_scaling, format_series


def test_fig6b_weak_scaling(benchmark, show, sweep_cache):
    data = benchmark.pedantic(
        fig6b_weak_scaling,
        kwargs={
            "n0": 48,
            "p_values": (4, 8, 27),
            "model_p_values": (8, 64, 512, 4096, 32768),
            "cache": sweep_cache,
        },
        rounds=1,
        iterations=1,
    )
    show(format_series(
        data["measured"], "p", "per_rank_bytes",
        title="Figure 6b (measured, N0=48): bytes/rank vs P",
    ))
    show(format_series(
        data["model"], "p", "per_rank_bytes",
        title="Figure 6b (model, N0=3200): bytes/rank vs P",
    ))

    model: dict[str, dict[int, float]] = {}
    for row in data["model"]:
        model.setdefault(row["impl"], {})[row["p"]] = row["per_rank_bytes"]

    # 2.5D flatness: conflux per-node volume varies by < 2.2x over a
    # 4096x range of P (integer-c rounding causes the wiggle).
    conflux = model["conflux"]
    spread = max(conflux.values()) / min(conflux.values())
    # 2D growth: ~ (P_hi / P_lo)^(1/6) = 32768/8 -> ~4x
    scala = model["scalapack2d"]
    growth = scala[32768] / scala[8]
    show(f"conflux weak-scaling spread: {spread:.2f}x "
         f"(2.5D: near-constant); scalapack growth: {growth:.2f}x "
         f"(2D: ~P^(1/6) -> {(32768 / 8) ** (1 / 6):.2f}x)")
    assert spread < 2.2
    assert growth == pytest.approx((32768 / 8) ** (1 / 6), rel=0.3)
    assert growth > spread


def test_fig6b_crossover_2d_loses_at_scale(benchmark, show):
    """Under weak scaling, the 2D libraries eventually fall behind both
    2.5D implementations — Figure 6b's right-hand side."""

    def run():
        return fig6b_weak_scaling(
            measured=False, model_p_values=(8, 512, 32768)
        )["model"]

    rows = benchmark(run)
    at_big_p = {
        r["impl"]: r["per_rank_bytes"] for r in rows if r["p"] == 32768
    }
    show("per-rank volume at P=32768 (weak scaling): "
         + ", ".join(f"{k}={v / 1e6:.1f}MB" for k, v in
                     sorted(at_big_p.items(), key=lambda kv: kv[1])))
    assert at_big_p["conflux"] < at_big_p["scalapack2d"]
    assert at_big_p["candmc25d"] < at_big_p["scalapack2d"]
