"""E7 — Figures 1/4 and the pebbling framework on explicit cDAGs.

Benchmarks cDAG construction + greedy pebbling on the LU graph, and
asserts the theory sandwich the framework promises: for every (N, M),

    Q_lower_bound  <=  Q_greedy_schedule

with the greedy schedule replayed through the full rule checker.
"""

from repro.harness import format_table
from repro.pebbling import greedy_schedule, lu_cdag, schedule_cost
from repro.pebbling.builders import lu_vertex_counts
from repro.theory.bounds import lu_io_lower_bound


def test_lu_cdag_construction(benchmark, show):
    g = benchmark(lu_cdag, 16)
    counts = lu_vertex_counts(16)
    assert len(g.inputs) == counts["inputs"]
    assert len(g.computed_vertices) == counts["s1"] + counts["s2"]
    show(f"LU cDAG N=16: {len(g)} vertices, {g.edge_count()} edges")


def test_greedy_pebbling_sandwich(benchmark, show):
    n = 10
    g = lu_cdag(n)

    def run():
        rows = []
        for m in (6, 12, 24, 48):
            moves = greedy_schedule(g, m)
            q = schedule_cost(g, m, moves)
            rows.append(
                {
                    "m": m,
                    "q_greedy": q,
                    "q_bound": lu_io_lower_bound(n, float(m)),
                    "moves": len(moves),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows,
        [
            ("m", "M"),
            ("q_greedy", "Q greedy"),
            ("q_bound", "Q lower bound"),
            ("moves", "schedule moves"),
        ],
        title=f"Red-blue pebbling of the LU cDAG (N={n})",
    ))
    for row in rows:
        assert row["q_greedy"] >= row["q_bound"] * 0.999
    qs = [row["q_greedy"] for row in rows]
    assert qs == sorted(qs, reverse=True)  # more memory, less I/O


def test_pebbling_scales_with_n(benchmark, show):
    """Greedy Q tracks the Theta(N^3 / sqrt(M)) shape of the bound."""
    m = 16

    def run():
        out = {}
        for n in (6, 8, 10, 12):
            g = lu_cdag(n)
            out[n] = schedule_cost(g, m, greedy_schedule(g, m))
        return out

    qs = benchmark.pedantic(run, rounds=1, iterations=1)
    show("greedy Q vs N at M=16: "
         + ", ".join(f"N={n}: {q}" for n, q in sorted(qs.items())))
    ratio = qs[12] / qs[6]
    # bound ratio: dominated by N^3 term -> ~(12/6)^3 = 8, but small-N
    # quadratic terms damp it; require clear superquadratic growth
    assert ratio > 4.0


def test_tiled_schedule_tightens_sandwich(benchmark, show):
    """The constructive tiled schedule (X-partition hint) beats greedy
    and pins the bound within a small constant."""
    from repro.pebbling import tiled_lu_schedule

    n, m = 20, 50
    g = lu_cdag(n)

    def run():
        return {
            "tiled": schedule_cost(g, m, tiled_lu_schedule(n, m)),
            "greedy": schedule_cost(g, m, greedy_schedule(g, m)),
            "bound": lu_io_lower_bound(n, float(m)),
        }

    q = benchmark.pedantic(run, rounds=1, iterations=1)
    show(f"N={n} M={m}: tiled Q={q['tiled']} (x{q['tiled'] / q['bound']:.2f} "
         f"bound), greedy Q={q['greedy']} "
         f"(x{q['greedy'] / q['bound']:.2f} bound)")
    assert q["bound"] < q["tiled"] < q["greedy"]


def test_dominator_set_computation(benchmark):
    """Min-vertex-cut dominator queries on the N=12 LU cDAG."""
    from repro.pebbling import minimum_dominator_size

    g = lu_cdag(12)
    subset = {("A", i, 1, 1) for i in range(2, 13)}

    result = benchmark(minimum_dominator_size, g, subset)
    assert result == len(subset)
