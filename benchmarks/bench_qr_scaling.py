"""E7-E9 — the QR workload: 2D Householder vs 2.5D CAQR scaling and
the QR I/O lower-bound gap.

Three checks:

* strong scaling: the 2D baseline's per-rank volume grows with P while
  CAQR's tree schedule tracks its exact per-step model (prediction %
  within a few points, like Table 2's COnfLUX column);
* replication: at equal P, a replicated [G, G, c] CAQR grid moves
  fewer bytes than the 2D Householder baseline — the 2.5D promise
  carried over from LU to QR;
* lower bound: measured CAQR volume stays within a small constant
  factor (<= 4x, observed ~1.1-1.3x) of the parallel QR bound
  4 N^3 / (3 P sqrt(M)), and the finite-N overhead shrinks as N grows.
"""

import numpy as np
import pytest

from repro.harness import (
    format_table,
    qr_confqr_gap,
    qr_lower_bound_gap,
    qr_strong_scaling,
)


def test_qr_strong_scaling_prediction(benchmark, show, sweep_cache):
    rows = benchmark.pedantic(
        qr_strong_scaling,
        kwargs={"n": 96, "p_values": (4, 8, 16), "cache": sweep_cache},
        rounds=1,
        iterations=1,
    )
    show(format_table(
        rows,
        [
            ("impl", "impl"),
            ("p", "P"),
            ("grid", "grid"),
            ("per_rank_bytes", "per-rank [B]"),
            ("prediction_pct", "prediction %"),
        ],
        title="QR strong scaling, N=96 (measured vs per-step models)",
    ))
    for row in rows:
        assert row["residual"] < 1e-10
        assert 90.0 < row["prediction_pct"] < 115.0
    by_impl = {}
    for row in rows:
        by_impl.setdefault(row["impl"], []).append(row)
    qr2d = sorted(by_impl["qr2d"], key=lambda r: r["p"])
    # The 2D baseline's total volume grows ~ sqrt(P).
    assert qr2d[-1]["total_bytes"] > qr2d[0]["total_bytes"]


def test_caqr_grid_choice_beats_2d_baseline(benchmark, show):
    """Offered 16 ranks, a [2, 2, 2] CAQR grid (8 active — the
    Processor Grid Optimization move: disable ranks for less traffic)
    moves ~40% fewer bytes than the 2D Householder baseline using all
    16: leading terms N^2 (Gc + 2G)/2 = 4 N^2 vs N^2 (Pc + 2Pr)/2 =
    6 N^2."""
    from repro.algorithms import caqr25d_qr, qr2d_householder

    def run():
        a = np.random.default_rng(7).standard_normal((64, 64))
        caqr = caqr25d_qr(a, 16, grid=(2, 2, 2), v=4)
        qr2d = qr2d_householder(a, 16, grid=(4, 4), nb=4)
        return caqr, qr2d

    caqr, qr2d = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        f"P=16, N=64: caqr25d[2,2,2] {caqr.volume.total_bytes:,} B vs "
        f"qr2d[4,4] {qr2d.volume.total_bytes:,} B "
        f"({qr2d.volume.total_bytes / caqr.volume.total_bytes:.2f}x)"
    )
    assert caqr.volume.total_bytes < qr2d.volume.total_bytes


def test_qr_gap_within_constant_of_bound(benchmark, show, sweep_cache):
    rows = benchmark.pedantic(
        qr_lower_bound_gap,
        kwargs={"n_values": (48, 64, 96), "p": 16,
                "cache": sweep_cache},
        rounds=1,
        iterations=1,
    )
    show(format_table(
        rows,
        [
            ("n", "N"),
            ("grid", "grid"),
            ("measured_elements", "measured [el]"),
            ("bound_elements", "bound [el]"),
            ("gap", "measured/bound"),
        ],
        title="Measured 2.5D CAQR vs the parallel QR I/O lower bound",
    ))
    for row in rows:
        assert row["gap"] > 1.0  # no schedule may beat the bound
        assert row["gap"] <= 4.0  # the constant-factor acceptance bar
    gaps = [row["gap"] for row in rows]
    assert gaps[-1] < gaps[0]  # finite-N overhead shrinks with N


def test_confqr_optimum_moves_past_c2(benchmark, show, sweep_cache):
    """E10 — the COnfQR headline: over equal-P [G, G, c] grids the
    compact-WY schedule's total volume is *strictly decreasing* in c
    (every term scales with G = sqrt(P/c)), where CAQR's panel fan-out
    flattens at c = 2 and then rises; and the measured volume sits on
    the exact per-step model (<= 5% is the acceptance bar; the model
    is exact by construction)."""
    rows = benchmark.pedantic(
        qr_confqr_gap,
        kwargs={"gc_points": ((8, 1), (4, 4), (2, 16)), "n": 48,
                "v": 4, "cache": sweep_cache},
        rounds=1,
        iterations=1,
    )
    show(format_table(
        rows,
        [
            ("g", "G"),
            ("c", "c"),
            ("confqr_bytes", "confqr [B]"),
            ("confqr_factor_bytes", "factor-only [B]"),
            ("caqr25d_bytes", "caqr25d [B]"),
            ("volume_ratio", "caqr/confqr"),
            ("gap", "confqr/bound"),
        ],
        title="COnfQR vs 2.5D CAQR at P=64 across replication depths",
    ))
    rows = sorted(rows, key=lambda r: r["c"])
    for row in rows:
        assert row["model_error"] <= 0.05
        assert row["gap"] > 1.0
    for shallow, deep in zip(rows, rows[1:]):
        # COnfQR keeps winning from replication past c = 2 ...
        assert deep["confqr_bytes"] < shallow["confqr_bytes"]
        assert deep["confqr_factor_bytes"] < shallow["confqr_factor_bytes"]
        # ... while CAQR's volume rises again.
        assert deep["caqr25d_bytes"] > shallow["caqr25d_bytes"]
    assert rows[-1]["volume_ratio"] > 4.0


def test_qr_bound_is_twice_lu_bound(benchmark):
    """The QR trailing update performs twice LU's multiplications on
    the same wedge, so the bounds sit in a clean 2:1 ratio."""
    from repro.theory.bounds import lu_s2_lower_bound, qr_io_lower_bound

    def ratio():
        n, m = 1 << 14, 1 << 20
        return qr_io_lower_bound(n, m) / lu_s2_lower_bound(n, m)

    r = benchmark(ratio)
    assert r == pytest.approx(2.0, rel=1e-3)
