"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artifacts
(DESIGN.md's per-experiment index maps them).  Heavy simulator runs use
``benchmark.pedantic(..., rounds=1)`` — the interesting output is the
communication volume (deterministic), not the wall time; timing numbers
measure the simulator, not Piz Daint.

Run with: pytest benchmarks/ --benchmark-only -s
(-s shows the paper-style tables each benchmark prints).
"""

import pytest


@pytest.fixture
def show():
    """Print helper that survives pytest's capture (use -s to see it)."""

    def _show(text: str) -> None:
        print("\n" + text)

    return _show


def pytest_collection_modifyitems(config, items):
    # Benchmarks are ordered by experiment id (file name) for readable
    # console output.
    items.sort(key=lambda item: item.fspath.basename)
