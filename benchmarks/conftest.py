"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artifacts
(DESIGN.md's per-experiment index maps them).  Heavy simulator runs use
``benchmark.pedantic(..., rounds=1)`` — the interesting output is the
communication volume (deterministic), not the wall time; timing numbers
measure the simulator, not Piz Daint.

Simulator-backed benchmarks route through the sweep engine's result
cache (the ``sweep_cache`` fixture): the first invocation computes and
stores each grid point, repeated invocations replay them as cache hits
and only new points (changed N/P/seed/implementation) are recomputed.
Set ``REPRO_SWEEP_CACHE`` to relocate the store, or delete it
(``python -m repro sweep --clear-cache``) to force recomputation.
The cache is keyed on parameters, not code: when changing what a
task computes, bump its ``@task(..., schema_version=N)`` so stale
entries stop replaying (DESIGN.md's cache key scheme).

Run with: pytest benchmarks/ --benchmark-only -s
(-s shows the paper-style tables each benchmark prints).
"""

import pytest

from repro.harness.cache import SweepCache, default_cache_dir


@pytest.fixture
def show():
    """Print helper that survives pytest's capture (use -s to see it)."""

    def _show(text: str) -> None:
        print("\n" + text)

    return _show


@pytest.fixture(scope="session")
def sweep_cache() -> SweepCache:
    """The shared sweep result cache ($REPRO_SWEEP_CACHE or
    ~/.cache/repro/sweeps) — the same store the CLI uses."""
    return SweepCache(default_cache_dir())


def pytest_collection_modifyitems(config, items):
    # Benchmarks are ordered by experiment id (file name) for readable
    # console output.
    items.sort(key=lambda item: item.fspath.basename)
