"""E13 — predicted-time trajectory: ``BENCH_timing.json``.

The discrete-event clock turns the byte ledger into predicted seconds;
this benchmark freezes those predictions for the ``table2-time`` and
``qr-strong-time`` grids into a machine-readable artifact — the repo's
first perf-trajectory file.  CI regenerates it on every run and
validates it against the schema below, so the predicted-time surface
is tracked commit to commit the same way the volume pins are.

Also runnable standalone (the CI timing-smoke job does exactly this)::

    python benchmarks/bench_timing.py --out BENCH_timing.json
    python benchmarks/bench_timing.py --validate BENCH_timing.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Artifact schema, hand-rolled (no jsonschema dependency in the
#: container): field name -> required type(s) for every point row.
SCHEMA_VERSION = 1
_POINT_FIELDS = {
    "sweep": str,
    "impl": str,
    "n": int,
    "p": int,
    "machine": str,
    "grid": list,
    "predicted_seconds": float,
    "compute_seconds": float,
    "comm_seconds": float,
    "measured_bytes": int,
}


def timing_rows(
    cache=None, max_points: int | None = None, workers: int = 1
) -> list[dict]:
    """Run the two ``*-time`` sweeps; rows tagged with their sweep."""
    from repro.harness.specs import (
        qr_strong_time_spec,
        table2_time_spec,
    )
    from repro.harness.sweep import run_sweep

    rows: list[dict] = []
    for spec in (table2_time_spec(), qr_strong_time_spec()):
        result = run_sweep(
            spec, workers=workers, cache=cache, max_points=max_points
        )
        for row in result.rows(strict=True):
            rows.append({"sweep": spec.name, **row})
    return rows


def build_artifact(rows: list[dict]) -> dict:
    """The BENCH_timing.json document for a set of sweep rows."""
    points = [
        {
            "sweep": row["sweep"],
            "impl": row["impl"],
            "n": int(row["n"]),
            "p": int(row["p"]),
            "machine": row["machine"],
            "grid": list(row["grid"]),
            "predicted_seconds": float(row["predicted_seconds"]),
            "compute_seconds": float(row["compute_seconds"]),
            "comm_seconds": float(row["comm_seconds"]),
            "measured_bytes": int(row["measured_bytes"]),
        }
        for row in rows
    ]
    points.sort(
        key=lambda r: (r["sweep"], r["impl"], r["n"], r["p"], r["machine"])
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "sweeps": sorted({p["sweep"] for p in points}),
        "machines": sorted({p["machine"] for p in points}),
        "points": points,
    }


def validate_artifact(doc: dict) -> list[str]:
    """Schema check; returns a list of violations (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version {doc.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}"
        )
    for key in ("sweeps", "machines", "points"):
        if not isinstance(doc.get(key), list):
            errors.append(f"missing or non-list field {key!r}")
    if errors:
        return errors
    if not doc["points"]:
        errors.append("no points")
    for i, point in enumerate(doc["points"]):
        for field, typ in _POINT_FIELDS.items():
            value = point.get(field)
            if not isinstance(value, typ) or isinstance(value, bool):
                errors.append(
                    f"points[{i}].{field}: expected {typ.__name__}, "
                    f"got {value!r}"
                )
                continue
            if field.endswith("_seconds") and value < 0:
                errors.append(f"points[{i}].{field}: negative time")
        if point.get("machine") not in doc["machines"]:
            errors.append(
                f"points[{i}].machine {point.get('machine')!r} not in "
                f"the machines list"
            )
        if point.get("sweep") not in doc["sweeps"]:
            errors.append(
                f"points[{i}].sweep {point.get('sweep')!r} not in "
                f"the sweeps list"
            )
    return errors


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------


def test_timing_trajectory_artifact(benchmark, show, sweep_cache):
    rows = benchmark.pedantic(
        timing_rows,
        kwargs={"cache": sweep_cache},
        rounds=1,
        iterations=1,
    )
    doc = build_artifact(rows)
    assert validate_artifact(doc) == []
    from repro.harness import format_table

    show(format_table(
        rows,
        [
            ("sweep", "sweep"),
            ("impl", "implementation"),
            ("n", "N"),
            ("p", "P"),
            ("machine", "machine"),
            ("predicted_seconds", "predicted [s]"),
            ("comm_seconds", "comm [s]"),
            ("compute_seconds", "compute [s]"),
        ],
        title="Predicted time trajectory (table2-time + qr-strong-time)",
    ))
    by_machine: dict[tuple, dict[str, float]] = {}
    for p in doc["points"]:
        key = (p["sweep"], p["impl"], p["n"], p["p"])
        by_machine.setdefault(key, {})[p["machine"]] = (
            p["predicted_seconds"]
        )
    for key, preds in by_machine.items():
        # Every grid point is predicted under both presets, and the
        # prediction reacts to the machine (different α-β-γ ⇒
        # different clock).
        assert len(preds) == 2, key
        times = list(preds.values())
        assert times[0] != times[1], key


# --------------------------------------------------------------------------
# standalone CLI (used by the CI timing-smoke job)
# --------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="generate / validate the BENCH_timing.json artifact"
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--out", metavar="PATH",
                      help="run the *-time sweeps and write the artifact")
    mode.add_argument("--validate", metavar="PATH",
                      help="schema-check an existing artifact")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-points", type=int, default=None)
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as fh:
            doc = json.load(fh)
        errors = validate_artifact(doc)
        if errors:
            for err in errors:
                print(f"INVALID: {err}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid ({len(doc['points'])} points, "
            f"machines {', '.join(doc['machines'])})"
        )
        return 0

    rows = timing_rows(
        max_points=args.max_points, workers=args.workers
    )
    doc = build_artifact(rows)
    errors = validate_artifact(doc)
    if errors:
        for err in errors:
            print(f"INVALID: {err}", file=sys.stderr)
        return 1
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(doc['points'])} predicted-time points to "
          f"{args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
