"""E10.5 — Ablation: pivoting latency, tournament vs partial pivoting.

Paper Section 7.3: tournament pivoting "reduces the O(N) latency cost
of the partial pivoting, which requires step-by-step column reduction
to find consecutive pivots, to O(N/v)".

Latency proxy measured here: the number of *messages* in the pivoting
phases — partial pivoting runs one maxloc all-reduce plus one pivot-row
broadcast per matrix column (N sequential rounds), the tournament one
merge-tree + broadcast per v-wide panel (N/v rounds).
"""

import numpy as np
from repro.algorithms import conflux_lu, scalapack2d_lu
from repro.harness import format_table


def test_pivoting_message_counts(benchmark, show):
    n, p = 128, 16

    def run():
        a = np.random.default_rng(5).standard_normal((n, n))
        rows = []
        for v in (8, 16, 32):
            res = conflux_lu(a, p, grid=(4, 4, 1), v=v)
            rows.append(
                {
                    "impl": f"conflux v={v}",
                    "pivot_rounds": n // v,
                    "pivot_msgs": res.volume.phase_messages.get(
                        "tournament", 0
                    )
                    + res.volume.phase_messages.get("bcast_a00", 0),
                }
            )
        res = scalapack2d_lu(a, p, grid=(4, 4), nb=16)
        rows.append(
            {
                "impl": "scalapack2d",
                "pivot_rounds": n,  # one pivot search per column
                "pivot_msgs": res.volume.phase_messages.get(
                    "panel_fact", 0
                ),
            }
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows,
        [
            ("impl", "implementation"),
            ("pivot_rounds", "pivot rounds (critical path)"),
            ("pivot_msgs", "pivoting messages"),
        ],
        title=f"Pivoting latency proxy (N={n}, P={p})",
    ))
    by_impl = {row["impl"]: row for row in rows}
    # tournament needs ~v x fewer pivoting rounds than partial pivoting
    assert by_impl["conflux v=32"]["pivot_rounds"] * 32 == n
    assert by_impl["scalapack2d"]["pivot_rounds"] == n
    # and an order of magnitude fewer pivoting messages at v=32
    assert (
        by_impl["conflux v=32"]["pivot_msgs"] * 4
        < by_impl["scalapack2d"]["pivot_msgs"]
    )


def test_latency_volume_tradeoff_summary(benchmark, show):
    """Larger v: fewer rounds (latency) but more A00-broadcast volume —
    the tunable trade-off of Section 7.2, in one table."""
    n, p = 128, 16

    def run():
        a = np.random.default_rng(6).standard_normal((n, n))
        rows = []
        for v in (4, 8, 16, 32):
            res = conflux_lu(a, p, grid=(4, 4, 1), v=v)
            rows.append(
                {
                    "v": v,
                    "rounds": n // v,
                    "total_bytes": res.volume.total_bytes,
                    "total_msgs": res.volume.total_messages,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows,
        [
            ("v", "v"),
            ("rounds", "pivot rounds"),
            ("total_bytes", "volume [B]"),
            ("total_msgs", "messages"),
        ],
        title="Latency/volume trade-off across v",
    ))
    rounds = [row["rounds"] for row in rows]
    msgs = [row["total_msgs"] for row in rows]
    assert rounds == sorted(rounds, reverse=True)
    assert msgs == sorted(msgs, reverse=True)  # fewer, bigger messages
