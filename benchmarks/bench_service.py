"""E14 — serving-layer trajectory: ``BENCH_service.json``.

The service layer turns the solver stack into a system that serves
load; this benchmark freezes its behaviour under a fixed synthetic
workload — one closed-loop run per dispatch policy — into a machine-
readable artifact, following the ``BENCH_timing.json`` pattern.  CI
regenerates and schema-validates it on every run, so queueing
behaviour (admission counts, cache effectiveness, tail latency) is
tracked commit to commit.

Each run's ``counts`` block is a pure function of the workload seed
(caching + in-flight coalescing make the number of jobs computed equal
to the number of distinct problems, however the event loop
interleaves); the ``observed`` block measures this machine today.

Also runnable standalone (the CI service-smoke job does exactly this)::

    python benchmarks/bench_service.py --out BENCH_service.json
    python benchmarks/bench_service.py --validate BENCH_service.json
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import tempfile

SCHEMA_VERSION = 1

#: Dispatch policies each benchmark run exercises.
POLICIES = ("fifo", "least-loaded", "batch")

#: Artifact schema, hand-rolled (no jsonschema dependency in the
#: container): field name -> required type(s), per run block.
_COUNT_FIELDS = {
    "requests": int,
    "completed": int,
    "rejected": int,
    "errors": int,
    "timeouts": int,
    "computed": int,
    "served_without_compute": int,
}
_LATENCY_FIELDS = ("p50", "p95", "p99", "mean", "max")


def _default_spec(requests: int = 60):
    from repro.service import WorkloadSpec

    return WorkloadSpec(
        mode="closed",
        requests=requests,
        clients=4,
        seed=0,
        zipf_s=1.2,
        sizes=(24, 32, 48),
        seed_pool=6,
        impl="conflux",
        p=4,
    )


def service_runs(
    policies=POLICIES, requests: int = 60, workers: int = 2
) -> list[dict]:
    """One closed-loop workload per policy, each on a fresh scratch
    cache so hit counts are reproducible run to run."""
    from repro.harness.cache import SweepCache
    from repro.service import ServiceConfig, run_workload

    spec = _default_spec(requests)
    runs = []
    for policy in policies:
        config = ServiceConfig(
            workers=workers, queue_depth=16, policy=policy,
            executor="thread",
        )
        with tempfile.TemporaryDirectory(
            prefix="repro-bench-service-"
        ) as tmp:
            report = run_workload(config, spec, cache=SweepCache(tmp))
        metrics = report.metrics
        runs.append(
            {
                "policy": policy,
                "counts": dict(metrics["counts"]),
                "observed": {
                    "latency_ms": dict(metrics["latency_ms"]),
                    "throughput_rps": metrics["throughput_rps"],
                    "wall_s": metrics["wall_s"],
                    "cache_hit_rate": metrics["cache_hit_rate"],
                    "max_queue_depth": metrics["max_queue_depth"],
                    "worker_executions": metrics["worker_executions"],
                    "worker_launches": metrics["worker_launches"],
                },
            }
        )
    return runs


def build_artifact(
    runs: list[dict], requests: int = 60, workers: int = 2
) -> dict:
    """The BENCH_service.json document for a set of policy runs."""
    spec = _default_spec(requests)
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": spec.to_dict(),
        "service": {"workers": workers, "queue_depth": 16,
                    "executor": "thread"},
        "policies": sorted(r["policy"] for r in runs),
        "runs": sorted(runs, key=lambda r: r["policy"]),
    }


def strip_observed(doc: dict) -> dict:
    """The deterministic projection of an artifact: everything except
    each run's measured-wall-clock ``observed`` block.  Two runs of
    the same workload seed must agree on this byte for byte."""
    out = copy.deepcopy(doc)
    for run in out.get("runs", []):
        run.pop("observed", None)
    return out


def validate_artifact(doc: dict) -> list[str]:
    """Schema check; returns a list of violations (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version {doc.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}"
        )
    for key in ("workload", "service"):
        if not isinstance(doc.get(key), dict):
            errors.append(f"missing or non-dict field {key!r}")
    for key in ("policies", "runs"):
        if not isinstance(doc.get(key), list):
            errors.append(f"missing or non-list field {key!r}")
    if errors:
        return errors
    if not doc["runs"]:
        errors.append("no runs")
    for i, run in enumerate(doc["runs"]):
        policy = run.get("policy")
        if policy not in doc["policies"]:
            errors.append(
                f"runs[{i}].policy {policy!r} not in the policies list"
            )
        counts = run.get("counts")
        if not isinstance(counts, dict):
            errors.append(f"runs[{i}].counts missing or non-dict")
            continue
        for field, typ in _COUNT_FIELDS.items():
            value = counts.get(field)
            if not isinstance(value, typ) or isinstance(value, bool):
                errors.append(
                    f"runs[{i}].counts.{field}: expected "
                    f"{typ.__name__}, got {value!r}"
                )
            elif value < 0:
                errors.append(f"runs[{i}].counts.{field}: negative")
        if not errors:
            accounted = (
                counts["completed"] + counts["rejected"]
                + counts["errors"] + counts["timeouts"]
            )
            if accounted != counts["requests"]:
                errors.append(
                    f"runs[{i}]: outcomes sum to {accounted}, not "
                    f"requests={counts['requests']}"
                )
            if (
                counts["computed"] + counts["served_without_compute"]
                != counts["completed"]
            ):
                errors.append(
                    f"runs[{i}]: computed + served_without_compute != "
                    f"completed"
                )
        observed = run.get("observed")
        if not isinstance(observed, dict):
            errors.append(f"runs[{i}].observed missing or non-dict")
            continue
        latency = observed.get("latency_ms")
        if not isinstance(latency, dict):
            errors.append(f"runs[{i}].observed.latency_ms non-dict")
        else:
            for field in _LATENCY_FIELDS:
                value = latency.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"runs[{i}].observed.latency_ms.{field}: "
                        f"expected non-negative number, got {value!r}"
                    )
            if not errors and not (
                latency["p50"] <= latency["p95"] <= latency["p99"]
            ):
                errors.append(
                    f"runs[{i}]: latency percentiles not monotone"
                )
    return errors


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------


def test_service_trajectory_artifact(benchmark, show):
    runs = benchmark.pedantic(service_runs, rounds=1, iterations=1)
    doc = build_artifact(runs)
    assert validate_artifact(doc) == []
    from repro.harness import format_table

    rows = [
        {
            "policy": run["policy"],
            "completed": run["counts"]["completed"],
            "computed": run["counts"]["computed"],
            "cached": run["counts"]["served_without_compute"],
            "p50_ms": run["observed"]["latency_ms"]["p50"],
            "p99_ms": run["observed"]["latency_ms"]["p99"],
            "rps": run["observed"]["throughput_rps"],
        }
        for run in doc["runs"]
    ]
    show(format_table(
        rows,
        [
            ("policy", "policy"),
            ("completed", "completed"),
            ("computed", "computed"),
            ("cached", "cache/coalesce"),
            ("p50_ms", "p50 [ms]"),
            ("p99_ms", "p99 [ms]"),
            ("rps", "req/s"),
        ],
        title="Serving trajectory (closed loop, per dispatch policy)",
    ))
    # every policy serves the full workload, and caching means far
    # fewer computations than requests
    for run in doc["runs"]:
        counts = run["counts"]
        assert counts["completed"] == counts["requests"]
        assert counts["computed"] < counts["requests"]


# --------------------------------------------------------------------------
# standalone CLI (used by the CI service-smoke job)
# --------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="generate / validate the BENCH_service.json artifact"
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--out", metavar="PATH",
                      help="run the policy workloads and write the "
                           "artifact")
    mode.add_argument("--validate", metavar="PATH",
                      help="schema-check an existing artifact")
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as fh:
            doc = json.load(fh)
        errors = validate_artifact(doc)
        if errors:
            for err in errors:
                print(f"INVALID: {err}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid ({len(doc['runs'])} runs, "
            f"policies {', '.join(doc['policies'])})"
        )
        return 0

    runs = service_runs(requests=args.requests, workers=args.workers)
    doc = build_artifact(
        runs, requests=args.requests, workers=args.workers
    )
    errors = validate_artifact(doc)
    if errors:
        for err in errors:
            print(f"INVALID: {err}", file=sys.stderr)
        return 1
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(doc['runs'])} serving runs to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
