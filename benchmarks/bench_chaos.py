"""E15 — fault-injection trajectory: ``BENCH_chaos.json``.

The ``chaos-lu`` / ``chaos-qr`` sweeps factor under every canned fault
class (delay, drop, duplicate, reorder, bitflip, crash) and classify
each run against ground truth: *detected* (a typed error surfaced),
*recovered* (completed, residual within tolerance) or
*silent-corruption* (completed wrong).  This benchmark freezes the
per-class detection / recovery / silent-corruption rates — and a
digest of every run's canonical fault log — into a machine-readable
artifact, following the ``BENCH_service.json`` pattern.

Everything but each run's ``observed`` wall clock is a pure function
of the plan seeds: the injector draws every fault decision from a
keyed hash, the runtime schedules deliveries deterministically, and
``--check-determinism`` proves it by executing the whole grid twice
and comparing the artifacts byte for byte.

Also runnable standalone (the CI chaos-smoke job does exactly this)::

    python benchmarks/bench_chaos.py --check-determinism
    python benchmarks/bench_chaos.py --out BENCH_chaos.json
    python benchmarks/bench_chaos.py --validate BENCH_chaos.json
"""

from __future__ import annotations

import argparse
import copy
import json
import sys

SCHEMA_VERSION = 1

#: Sweeps each benchmark run exercises (registry names).
CHAOS_SWEEPS = ("chaos-lu", "chaos-qr")

OUTCOMES = ("detected", "recovered", "silent-corruption")

#: Per-point fields carried into the artifact.  ``elapsed`` and other
#: wall-clock observables are deliberately absent — a point row must
#: be identical across replays of the same seed.
_POINT_FIELDS = (
    "fault_class", "fault_seed", "outcome", "detail", "residual",
    "n_injected", "fault_log_digest",
)


def chaos_runs(
    sweeps=CHAOS_SWEEPS, fault_seeds=(0, 1, 2)
) -> list[dict]:
    """Execute each chaos sweep uncached and summarise per class."""
    from repro.harness.specs import SPECS
    from repro.harness.sweep import run_sweep

    runs = []
    for name in sweeps:
        spec = SPECS[name](fault_seeds=tuple(fault_seeds))
        result = run_sweep(spec, workers=1)
        failed = [r for r in result.results if r.status != "ok"]
        if failed:
            first = failed[0]
            raise RuntimeError(
                f"{name}: {len(failed)} point(s) failed to classify; "
                f"first: {first.point.params}: {first.error}"
            )
        points = [
            {field: r.result[field] for field in _POINT_FIELDS}
            for r in result.results
        ]
        points.sort(
            key=lambda p: (p["fault_class"], p["fault_seed"])
        )
        rates: dict[str, dict] = {}
        for point in points:
            cls = rates.setdefault(
                point["fault_class"],
                {outcome: 0 for outcome in OUTCOMES} | {"points": 0},
            )
            cls[point["outcome"]] += 1
            cls["points"] += 1
        runs.append(
            {
                "sweep": name,
                "params": dict(spec.fixed),
                "rates": rates,
                "points": points,
                "observed": {"wall_s": result.elapsed_s},
            }
        )
    return runs


def build_artifact(runs: list[dict]) -> dict:
    """The BENCH_chaos.json document for a set of chaos sweep runs."""
    return {
        "schema_version": SCHEMA_VERSION,
        "sweeps": sorted(r["sweep"] for r in runs),
        "outcomes": list(OUTCOMES),
        "runs": sorted(runs, key=lambda r: r["sweep"]),
    }


def strip_observed(doc: dict) -> dict:
    """The deterministic projection of an artifact: everything except
    each run's measured-wall-clock ``observed`` block.  Two runs over
    the same plan seeds must agree on this byte for byte."""
    out = copy.deepcopy(doc)
    for run in out.get("runs", []):
        run.pop("observed", None)
    return out


def validate_artifact(doc: dict) -> list[str]:
    """Schema check; returns a list of violations (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version {doc.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}"
        )
    for key in ("sweeps", "outcomes", "runs"):
        if not isinstance(doc.get(key), list):
            errors.append(f"missing or non-list field {key!r}")
    if errors:
        return errors
    if not doc["runs"]:
        errors.append("no runs")
    for i, run in enumerate(doc["runs"]):
        sweep = run.get("sweep")
        if sweep not in doc["sweeps"]:
            errors.append(
                f"runs[{i}].sweep {sweep!r} not in the sweeps list"
            )
        points = run.get("points")
        if not isinstance(points, list) or not points:
            errors.append(f"runs[{i}].points missing or empty")
            continue
        counted: dict[str, dict[str, int]] = {}
        for j, point in enumerate(points):
            outcome = point.get("outcome")
            if outcome not in OUTCOMES:
                errors.append(
                    f"runs[{i}].points[{j}].outcome {outcome!r} "
                    f"not in {OUTCOMES}"
                )
                continue
            digest = point.get("fault_log_digest")
            injected = point.get("n_injected")
            if outcome == "detected":
                if digest is not None or injected is not None:
                    errors.append(
                        f"runs[{i}].points[{j}]: a detected point "
                        f"has no reachable fault log, yet carries one"
                    )
            else:
                if not isinstance(digest, str) or not digest:
                    errors.append(
                        f"runs[{i}].points[{j}].fault_log_digest: "
                        f"expected hex string, got {digest!r}"
                    )
                if not isinstance(injected, int) or injected < 0:
                    errors.append(
                        f"runs[{i}].points[{j}].n_injected: expected "
                        f"non-negative int, got {injected!r}"
                    )
            cls = counted.setdefault(
                str(point.get("fault_class")),
                {o: 0 for o in OUTCOMES},
            )
            cls[outcome] += 1
        rates = run.get("rates")
        if not isinstance(rates, dict):
            errors.append(f"runs[{i}].rates missing or non-dict")
            continue
        for fault_class, tallied in counted.items():
            stated = rates.get(fault_class)
            if not isinstance(stated, dict):
                errors.append(
                    f"runs[{i}].rates missing class {fault_class!r}"
                )
                continue
            for outcome in OUTCOMES:
                if stated.get(outcome) != tallied[outcome]:
                    errors.append(
                        f"runs[{i}].rates[{fault_class!r}].{outcome} "
                        f"= {stated.get(outcome)!r} but the points "
                        f"tally {tallied[outcome]}"
                    )
            if stated.get("points") != sum(tallied.values()):
                errors.append(
                    f"runs[{i}].rates[{fault_class!r}].points != "
                    f"its outcome tallies"
                )
    return errors


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------


def test_chaos_trajectory_artifact(benchmark, show):
    runs = benchmark.pedantic(
        chaos_runs,
        kwargs={"fault_seeds": (0, 1)},
        rounds=1,
        iterations=1,
    )
    doc = build_artifact(runs)
    assert validate_artifact(doc) == []
    from repro.harness import format_table

    rows = [
        {
            "sweep": run["sweep"],
            "fault_class": fault_class,
            "detected": cls["detected"],
            "recovered": cls["recovered"],
            "silent": cls["silent-corruption"],
        }
        for run in doc["runs"]
        for fault_class, cls in sorted(run["rates"].items())
    ]
    show(format_table(
        rows,
        [
            ("sweep", "sweep"),
            ("fault_class", "fault class"),
            ("detected", "detected"),
            ("recovered", "recovered"),
            ("silent", "silent corruption"),
        ],
        title="Chaos trajectory (outcomes per fault class)",
    ))
    for run in doc["runs"]:
        # a plan whose rule never fired must leave the run clean
        for point in run["points"]:
            if point["n_injected"] == 0:
                assert point["outcome"] == "recovered"
        if run["sweep"] == "chaos-lu":
            # pure delays never corrupt values; lost messages must
            # surface as typed errors, never as silent corruption
            assert run["rates"]["delay"]["recovered"] \
                == run["rates"]["delay"]["points"]
            assert run["rates"]["drop"]["detected"] \
                == run["rates"]["drop"]["points"]


# --------------------------------------------------------------------------
# standalone CLI (used by the CI chaos-smoke job)
# --------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="generate / validate the BENCH_chaos.json artifact"
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--out", metavar="PATH",
                      help="run the chaos sweeps and write the artifact")
    mode.add_argument("--validate", metavar="PATH",
                      help="schema-check an existing artifact")
    mode.add_argument("--check-determinism", action="store_true",
                      help="execute the grid twice and require "
                           "identical fault logs and outcomes")
    parser.add_argument(
        "--seeds", type=int, default=3,
        help="fault seeds per class (default 3)",
    )
    args = parser.parse_args(argv)
    fault_seeds = tuple(range(args.seeds))

    if args.validate:
        with open(args.validate) as fh:
            doc = json.load(fh)
        errors = validate_artifact(doc)
        if errors:
            for err in errors:
                print(f"INVALID: {err}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid ({len(doc['runs'])} sweeps, "
            f"{sum(len(r['points']) for r in doc['runs'])} points)"
        )
        return 0

    if args.check_determinism:
        first = strip_observed(
            build_artifact(chaos_runs(fault_seeds=fault_seeds))
        )
        second = strip_observed(
            build_artifact(chaos_runs(fault_seeds=fault_seeds))
        )
        blob1 = json.dumps(first, sort_keys=True)
        blob2 = json.dumps(second, sort_keys=True)
        if blob1 != blob2:
            print(
                "NON-DETERMINISTIC: two executions of the chaos grid "
                "disagree",
                file=sys.stderr,
            )
            for run1, run2 in zip(first["runs"], second["runs"]):
                for p1, p2 in zip(run1["points"], run2["points"]):
                    if p1 != p2:
                        print(
                            f"  {run1['sweep']} "
                            f"{p1['fault_class']}/{p1['fault_seed']}: "
                            f"{p1} != {p2}",
                            file=sys.stderr,
                        )
            return 1
        n_points = sum(len(r["points"]) for r in first["runs"])
        print(
            f"deterministic: {n_points} chaos points replayed "
            f"identically (fault logs and outcomes)"
        )
        return 0

    doc = build_artifact(chaos_runs(fault_seeds=fault_seeds))
    errors = validate_artifact(doc)
    if errors:
        for err in errors:
            print(f"INVALID: {err}", file=sys.stderr)
        return 1
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {sum(len(r['points']) for r in doc['runs'])} chaos "
        f"points to {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
