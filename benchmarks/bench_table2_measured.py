"""E2 — Table 2, measured rows: measured/modeled (prediction %).

The paper instruments real libraries with Score-P; we run the simulated
implementations at reduced (N, P) — the simulator moves exactly the
bytes its schedule prescribes, so prediction % plays the same role
(their Table 2 reports 97-103% for the 2D libraries and COnfLUX; our
simulated runs land in the same band).
"""

from repro.harness import format_table
from repro.harness.experiments import table2_measured_rows

POINTS = ((128, 16), (256, 64))


def test_table2_measured_prediction(benchmark, show, sweep_cache):
    rows = benchmark.pedantic(
        table2_measured_rows,
        kwargs={"points": POINTS, "cache": sweep_cache},
        rounds=1,
        iterations=1,
    )
    show(format_table(
        rows,
        [
            ("n", "N"),
            ("p", "P"),
            ("impl", "implementation"),
            ("measured_bytes", "measured [B]"),
            ("modeled_bytes", "modeled [B]"),
            ("prediction_pct", "prediction %"),
            ("grid", "grid"),
        ],
        title=f"Table 2 (measured, reduced scale {POINTS}): "
              f"measured vs modeled",
    ))
    for row in rows:
        assert row["residual"] < 1e-10
        # 2D + COnfLUX prediction accuracy mirrors the paper's 97-103%;
        # candmc's swap term depends on the pivot draw, so it gets a
        # wider band.
        tol = 25 if row["impl"] == "candmc25d" else 15
        assert abs(row["prediction_pct"] - 100) < tol, (
            f"{row['impl']} prediction {row['prediction_pct']:.1f}%"
        )


def test_conflux_measured_beats_2d_at_p64(benchmark, show, sweep_cache):
    """The paper's N=4096, P=64 cell has COnfLUX 5% ahead of LibSci;
    the simulated equivalent shows the same marginal win."""

    def run():
        return table2_measured_rows(
            points=((256, 64),), impls=("conflux", "scalapack2d"),
            cache=sweep_cache,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    vols = {r["impl"]: r["measured_bytes"] for r in rows}
    show(
        f"N=256, P=64 measured: conflux {vols['conflux']:,} B vs "
        f"scalapack2d {vols['scalapack2d']:,} B "
        f"(ratio {vols['scalapack2d'] / vols['conflux']:.3f})"
    )
    assert vols["conflux"] < vols["scalapack2d"] * 1.05
