"""E3 — Figure 6a: communication volume per node vs P (fixed N).

Measured series at simulator scale plus the model curves at the paper's
N = 16,384.  Shape assertions: (a) COnfLUX's per-node volume falls
faster than the 2D libraries' as P grows; (b) at the paper's scale the
model ordering matches Figure 6a (COnfLUX lowest across the sweep).
"""

import pytest

from repro.harness import fig6a_strong_scaling, format_series

MEASURED_N = 192
MEASURED_P = (4, 16, 64)


def test_fig6a_measured_and_model(benchmark, show, sweep_cache):
    data = benchmark.pedantic(
        fig6a_strong_scaling,
        kwargs={
            "n": MEASURED_N,
            "p_values": MEASURED_P,
            "model_p_values": (16, 64, 256, 1024, 4096, 16384),
            "cache": sweep_cache,
        },
        rounds=1,
        iterations=1,
    )
    show(format_series(
        data["measured"], "p", "per_rank_bytes",
        title=f"Figure 6a (measured, N={MEASURED_N}): bytes/rank vs P",
    ))
    show(format_series(
        data["model"], "p", "per_rank_bytes",
        title="Figure 6a (model, N=16384): bytes/rank vs P",
    ))

    # (a) measured per-rank volume trends downward with P (candmc's
    # replication overheads make it non-monotone at toy N, so only the
    # endpoints are compared; the paper's N = 16,384 curves are
    # monotone)
    series: dict[str, list[tuple[int, float]]] = {}
    for row in data["measured"]:
        series.setdefault(row["impl"], []).append(
            (row["p"], row["per_rank_bytes"])
        )
    for impl, pts in series.items():
        pts.sort()
        assert pts[-1][1] < pts[0][1], f"{impl} per-rank volume grew"
        if impl != "candmc25d":
            values = [v for _, v in pts]
            assert values == sorted(values, reverse=True), (
                f"{impl} not monotone: {pts}"
            )

    # (b) model ordering at the paper's scale: conflux lowest for all
    # P >= 64, never more than 1% off best at the P = 16 tie point
    model: dict[int, dict[str, float]] = {}
    for row in data["model"]:
        model.setdefault(row["p"], {})[row["impl"]] = row["per_rank_bytes"]
    for p, vols in model.items():
        best = min(vols.values())
        assert vols["conflux"] <= best * 1.01, f"P={p}: {vols}"
        if p >= 64:
            assert min(vols, key=vols.get) == "conflux", f"P={p}: {vols}"


def test_fig6a_conflux_scaling_exponent(benchmark, show):
    """COnfLUX per-rank volume scales ~P^(-2/3) (vs 2D's P^(-1/2)) under
    max replication — the asymptotic separation behind Figure 6a."""
    import math

    from repro.models.prediction import sweep_models

    def series():
        # Leading factors only — the paper's figure convention; the
        # exact model's A00-broadcast term (P v N total) overtakes the
        # leading term beyond P ~ (N/a)^(6/5), which EXPERIMENTS.md
        # records as a reproduction finding.
        rows = []
        for p in (256, 1024, 4096, 16384, 65536):
            for impl, vol in sweep_models(
                16384, p, leading_only=True
            ).items():
                rows.append(
                    {"impl": impl, "p": p, "per_rank_bytes": vol / p}
                )
        return rows

    rows = benchmark(series)
    per = {}
    for row in rows:
        per.setdefault(row["impl"], {})[row["p"]] = row["per_rank_bytes"]

    def exponent(impl):
        lo, hi = 256, 65536
        return math.log(per[impl][hi] / per[impl][lo]) / math.log(hi / lo)

    e_conflux = exponent("conflux")
    e_2d = exponent("scalapack2d")
    show(f"scaling exponents: conflux {e_conflux:.3f} (theory ~ -2/3), "
         f"scalapack2d {e_2d:.3f} (theory ~ -1/2)")
    assert e_conflux == pytest.approx(-2 / 3, abs=0.12)
    assert e_2d == pytest.approx(-1 / 2, abs=0.05)
    assert e_conflux < e_2d
