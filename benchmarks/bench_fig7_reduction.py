"""E5 — Figure 7: communication reduction vs the second-best algorithm.

Regenerates the (P, N) heat map of predicted reductions up to
P = 262,144, the Summit full-scale prediction ("2.1x less"), the
measured-scale reduction points, and the CANDMC-vs-2D crossover that
motivates "asymptotic optimality is not enough".
"""

import pytest

from repro.harness import format_table
from repro.harness.experiments import (
    fig7_reduction_grid,
    summit_prediction,
)
from repro.models.prediction import (
    algorithmic_memory,
    choose_c_max_replication,
    crossover_p_candmc_vs_2d,
    reduction_vs_second_best,
)


def test_fig7_reduction_heatmap(benchmark, show, sweep_cache):
    rows = benchmark(lambda: fig7_reduction_grid(cache=sweep_cache))
    show(format_table(
        rows,
        [
            ("n", "N"),
            ("p", "P"),
            ("best", "best"),
            ("second_best", "2nd best"),
            ("reduction", "reduction x"),
        ],
        title="Figure 7: predicted reduction vs second-best",
    ))
    # COnfLUX is within a whisker of best everywhere (at P = 64 with
    # max replication its leading model ties the 2D one — the paper's
    # own Table 2 shows just 5% at that point) and strictly best from
    # P = 256 up, with the reduction growing in P.
    for row in rows:
        assert row["conflux_vs_best"] <= 1.02, row
        if row["p"] >= 256:
            assert row["best"] == "conflux", row
            assert row["reduction"] >= 1.0
    by_n: dict[int, list[tuple[int, float]]] = {}
    for row in rows:
        if row["p"] >= 256:
            by_n.setdefault(row["n"], []).append(
                (row["p"], row["reduction"])
            )
    for n, pts in by_n.items():
        pts.sort()
        assert pts[-1][1] > pts[0][1], f"reduction flat for N={n}"


def test_fig7_paper_headline_points(benchmark, show):
    """Model ratios at the paper's quoted points: ~1.6x at (16384,
    1024); >2x toward exascale."""

    def points():
        return {
            "p1024": reduction_vs_second_best(16384, 1024).reduction,
            "p262144": reduction_vs_second_best(
                16384, 262144, leading_only=True
            ).reduction,
        }

    vals = benchmark(points)
    show(f"reduction at N=16384: P=1024 -> {vals['p1024']:.2f}x (exact "
         f"model), P=262144 -> {vals['p262144']:.2f}x (leading factors, "
         f"the paper's figure convention)")
    assert vals["p1024"] == pytest.approx(1.6, abs=0.1)
    assert vals["p262144"] > 2.0


def test_fig7_summit_prediction(benchmark, show):
    pred = benchmark(summit_prediction)
    show(f"Summit full-scale prediction: {pred}")
    assert pred["best"] == "conflux"
    assert pred["reduction_leading"] == pytest.approx(2.1, abs=0.15)
    assert pred["reduction_exact"] > 1.7


def test_fig7_candmc_crossover(benchmark, show):
    """CANDMC's model undercuts the 2D model only at very large P
    (paper: ~450k ranks for N = 16,384 with their model constants; ours
    crosses earlier because the published CANDMC model omits lower-order
    terms — EXPERIMENTS.md discusses the gap).  The qualitative claim —
    the crossover sits far beyond every measured configuration — holds.
    """
    n = 16384

    def run():
        grid = [2**k for k in range(6, 20)]

        def m_of_p(p):
            c = choose_c_max_replication(p, n)
            return algorithmic_memory(n, p, c)

        return crossover_p_candmc_vs_2d(n, m_of_p, grid)

    p_cross = benchmark(run)
    show(f"CANDMC beats 2D (model) first at P = {p_cross:,} "
         f"(paper's model constants put it at ~450,000)")
    assert p_cross is not None
    assert p_cross > 1024  # far beyond every measured point
