"""E10.4 — Ablation: collective algorithm volumes in the smpi substrate.

The simulated runtime implements its collectives on explicit
point-to-point trees/rings, so their volumes are measurable facts, not
assumptions.  This bench pins the closed forms the cost models rely on
(bcast/reduce: (P-1)s; allreduce: 2(P-1)s; allgather: P(P-1)s) and
times the substrate itself (the one place wall time is meaningful in
this repo — it bounds how large a simulation the benches can afford).
"""

import numpy as np
from repro.harness import format_table
from repro.smpi import run_spmd


def _volume_of(size: int, op_name: str, payload_elems: int = 64) -> int:
    def fn(comm):
        data = np.zeros(payload_elems)
        if op_name == "bcast":
            comm.bcast(data if comm.rank == 0 else None, root=0)
        elif op_name == "reduce":
            comm.reduce(data, root=0)
        elif op_name == "allreduce":
            comm.allreduce(data)
        elif op_name == "allgather":
            comm.allgather(data)
        elif op_name == "gather":
            comm.gather(data, root=0)

    _, report = run_spmd(size, fn)
    return report.total_bytes


def test_collective_volume_closed_forms(benchmark, show):
    s = 64 * 8  # payload bytes

    def run():
        rows = []
        for p in (4, 8, 16):
            rows.append(
                {
                    "p": p,
                    "bcast": _volume_of(p, "bcast"),
                    "bcast_theory": (p - 1) * s,
                    "allreduce": _volume_of(p, "allreduce"),
                    "allreduce_theory": 2 * (p - 1) * s,
                    "allgather": _volume_of(p, "allgather"),
                    "allgather_theory": p * (p - 1) * (s + 8),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows,
        [
            ("p", "P"),
            ("bcast", "bcast [B]"),
            ("bcast_theory", "theory"),
            ("allreduce", "allreduce [B]"),
            ("allreduce_theory", "theory"),
            ("allgather", "allgather [B]"),
            ("allgather_theory", "theory"),
        ],
        title="Collective volumes vs closed forms (64-element payload)",
    ))
    for row in rows:
        assert row["bcast"] == row["bcast_theory"]
        assert row["allreduce"] == row["allreduce_theory"]
        assert row["allgather"] == row["allgather_theory"]


def test_substrate_throughput_bcast(benchmark):
    """Wall-time of a 16-rank broadcast through the thread substrate —
    the simulator-cost baseline for sizing measured experiments."""

    def run():
        def fn(comm):
            comm.bcast(
                np.zeros(256) if comm.rank == 0 else None, root=0
            )

        run_spmd(16, fn)

    benchmark(run)


def test_substrate_throughput_spmd_spawn(benchmark):
    """Thread-spawn + join overhead for a 32-rank no-op job."""

    def run():
        run_spmd(32, lambda comm: None)

    benchmark(run)


def test_reduce_vs_gather_volume_tradeoff(benchmark, show):
    """Tree reduce moves (P-1)s; a gather-then-local-sum moves the same
    (P-1)s — but an allgather-based reduction would move P(P-1)s.  The
    tournament uses tree reduce + bcast for exactly this reason."""
    p, s = 8, 64 * 8

    def run():
        return {
            "reduce": _volume_of(p, "reduce"),
            "gather": _volume_of(p, "gather"),
            "allgather": _volume_of(p, "allgather"),
        }

    vols = benchmark.pedantic(run, rounds=1, iterations=1)
    show(f"P={p}: reduce {vols['reduce']:,} B, gather {vols['gather']:,} "
         f"B, allgather {vols['allgather']:,} B")
    assert vols["reduce"] == vols["gather"] == (p - 1) * s
    assert vols["allgather"] > vols["reduce"] * (p - 1)
